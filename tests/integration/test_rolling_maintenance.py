"""Requirement R1: continuous operation through scheduled maintenance.

    "It is unacceptable to bring down the system for upgrades or
    maintenance. ... it must continue running even during scheduled
    maintenance periods or hardware upgrades."

This test performs a *rolling restart*: every infrastructure host is
taken down and brought back, one at a time, while publishers keep
publishing.  Afterwards the system must be fully caught up: guaranteed
data all stored, services answering, monitors live.
"""

from repro.apps import KeywordGenerator, NewsMonitor
from repro.core import InformationBus, QoS, RmiClient
from repro.objects import (AttributeSpec, DataObject, TypeDescriptor,
                           standard_registry)
from repro.repository import CaptureServer, QueryServer


def test_rolling_restart_of_every_infrastructure_host():
    bus = InformationBus(seed=77)   # realistic cost model
    hosts = [f"node{i:02d}" for i in range(5)]
    for address in hosts:
        bus.add_host(address)

    reg = standard_registry()
    reg.register(TypeDescriptor(
        "story", attributes=[AttributeSpec("headline", "string"),
                             AttributeSpec("n", "int")]))
    publisher = bus.client("node00", "feed", registry=reg)

    monitor = NewsMonitor(bus.client("node01", "monitor"))
    generator = KeywordGenerator(bus.client("node02", "kwgen"))
    repository = bus.client("node03", "repository")
    capture = CaptureServer(repository, ["news.>"])
    QueryServer(repository, capture.store, "svc.repository")

    published = {"n": 0}

    def publish_tick():
        if bus.host("node00").up:
            publisher.publish(
                "news.equity.gmc",
                DataObject(reg, "story",
                           headline=f"chip story {published['n']}",
                           n=published["n"]),
                qos=QoS.GUARANTEED)
            published["n"] += 1

    for step in range(100):
        bus.sim.schedule_at(step * 0.3, publish_tick)

    # the maintenance schedule: each non-publisher host gets a 2-second
    # window, strictly one at a time (as an operator would do it)
    window = 2.0
    for index, address in enumerate(["node01", "node02", "node03",
                                     "node04"]):
        down_at = 3.0 + index * 4.0
        bus.sim.schedule_at(down_at, bus.crash_host, address)
        bus.sim.schedule_at(down_at + window, bus.recover_host, address)

    bus.run_for(32.0)
    bus.settle(20.0)

    total = published["n"]
    assert total == 100

    # guaranteed data: every story is in the repository exactly once,
    # including those published while the repository host was down
    assert bus.daemon("node00").guaranteed_pending() == []
    stored = sorted(o.get("n") for o in capture.store.query("story"))
    assert stored == list(range(total))

    # the monitor missed only what flowed during its own 2s window
    assert monitor.stories_received >= total - 12
    assert monitor.stories_received <= total

    # the keyword generator kept annotating after its restart
    assert generator.properties_published > 0

    # and the query service answers normally at the end
    rmi = RmiClient(bus.client("node04", "analyst"), "svc.repository")
    out = []
    rmi.call("tally", {"type_name": "story"},
             lambda v, e: out.append((v, e)))
    bus.run_for(3.0)
    assert out == [(total, None)]
