"""Smoke tests: every example script must run clean end to end.

Each example asserts its own scenario internally; here we just execute
them (with stdout captured) so a regression anywhere in the stack fails
the suite, not just the demo.
"""

import importlib.util
import io
import os
from contextlib import redirect_stdout

import pytest

EXAMPLES_DIR = os.path.join(os.path.dirname(os.path.dirname(
    os.path.dirname(os.path.abspath(__file__)))), "examples")

EXAMPLES = ["quickstart", "trading_floor", "fab_floor",
            "dynamic_evolution", "operations_console", "wan_trading",
            "market_data"]


def run_example(name):
    path = os.path.join(EXAMPLES_DIR, f"{name}.py")
    spec = importlib.util.spec_from_file_location(f"example_{name}", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    buffer = io.StringIO()
    with redirect_stdout(buffer):
        module.main()
    return buffer.getvalue()


@pytest.mark.parametrize("name", EXAMPLES)
def test_example_runs(name):
    output = run_example(name)
    assert "OK" in output


def test_quickstart_demonstrates_type_learning():
    output = run_example("quickstart")
    assert "attribute_type('price') = float" in output
    assert "position(GMC) -> 1200" in output


def test_trading_floor_demonstrates_figure4():
    output = run_example("trading_floor")
    assert "Keyword Generator comes on-line" in output
    assert "properties:" in output
    assert "keywords" in output


def test_dynamic_evolution_demonstrates_upgrade():
    output = run_example("dynamic_evolution")
    assert "next_lot -> 'LOT-v1-LITHO8'" in output
    assert "after v1 retires: next_lot -> 'LOT-v2-LITHO8'" in output
    assert "obj_recipe" in output
