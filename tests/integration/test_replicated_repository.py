"""A fault-tolerant Object Repository, composed from existing primitives.

The paper: "Service objects typically contain extensive state and may be
fault-tolerant" (Section 3) and "several server objects can be used to
provide load balancing or fault-tolerance" (Section 3.3).  This test
builds that, with no new mechanism:

* two capture servers on different hosts, both durable subscribers;
* publishers use guaranteed delivery with ``ack_quorum=2`` — a publish
  is only considered done once *both* replicas have stored it;
* two query servers in an exclusive group (rank 0 primary, rank 1
  backup): only the leader answers discovery.

Crash the primary: queries fail over to the backup, which has the full
data set; recover it, and it resumes leadership with its write-ahead
log intact.
"""

import pytest

from repro.core import BusConfig, InformationBus, QoS, RmiClient
from repro.objects import (AttributeSpec, DataObject, TypeDescriptor,
                           standard_registry)
from repro.repository import CaptureServer, QueryServer
from repro.sim import CostModel


@pytest.fixture
def world():
    config = BusConfig()
    config.ack_quorum = 2           # both replicas must confirm
    bus = InformationBus(seed=1, cost=CostModel.ideal(), config=config)
    bus.add_hosts(4)
    reg = standard_registry()
    reg.register(TypeDescriptor(
        "trade", attributes=[AttributeSpec("n", "int")]))
    publisher = bus.client("node00", "feed", registry=reg)

    replicas = []
    for index, address in enumerate(("node01", "node02")):
        client = bus.client(address, "repository")
        capture = CaptureServer(client, ["trades.>"])
        query = QueryServer(client, capture.store, "svc.trades",
                            rank=index, exclusive=True)
        replicas.append((client, capture, query))
    bus.run_for(1.0)    # group presence converges
    return bus, reg, publisher, replicas


def publish_trades(bus, reg, publisher, values):
    for n in values:
        publisher.publish("trades.exec", DataObject(reg, "trade", n=n),
                          qos=QoS.GUARANTEED)
    bus.settle(3.0)


def tally(bus, client_host, out):
    rmi = RmiClient(bus.client(client_host, f"analyst{len(out)}"),
                    "svc.trades")
    result = []
    rmi.call("tally", {"type_name": "trade"},
             lambda v, e: result.append((v, e)))
    bus.run_for(3.0)
    out.append(result[0])
    return result[0]


def test_quorum_means_both_replicas_have_the_data(world):
    bus, reg, publisher, replicas = world
    publish_trades(bus, reg, publisher, range(5))
    assert bus.daemon("node00").guaranteed_pending() == []
    for _, capture, _query in replicas:
        assert capture.store.count("trade") == 5


def test_only_the_primary_answers_queries(world):
    bus, reg, publisher, replicas = world
    publish_trades(bus, reg, publisher, range(3))
    out = []
    value, error = tally(bus, "node03", out)
    assert error is None and value == 3
    primary, backup = replicas[0][2], replicas[1][2]
    assert primary.rmi.calls_served == 1
    assert backup.rmi.calls_served == 0


def test_failover_and_recovery(world):
    bus, reg, publisher, replicas = world
    publish_trades(bus, reg, publisher, range(4))
    out = []
    assert tally(bus, "node03", out) == (4, None)

    # primary replica host dies
    bus.crash_host("node01")
    bus.run_for(2.0)     # presence lapses; rank-1 becomes leader
    publish_trades(bus, reg, publisher, range(4, 6))
    # quorum cannot be met with one replica down: entries stay pending
    assert len(bus.daemon("node00").guaranteed_pending()) == 2
    # but queries keep working against the backup, fully caught up
    assert tally(bus, "node03", out) == (6, None)

    # the primary returns: WAL replay + guaranteed redelivery catch it up
    bus.recover_host("node01")
    bus.settle(8.0)
    assert bus.daemon("node00").guaranteed_pending() == []
    assert replicas[0][1].store.count("trade") == 6
    assert tally(bus, "node03", out) == (6, None)
