"""End-to-end corruption faults: the checksum drops bad frames, the
reliable protocol repairs them.

With ``corrupt_rate > 0`` on the Ethernet segment, some receivers get a
copy of a broadcast with one bit flipped.  The wire frame's CRC rejects
the datagram at the socket boundary — indistinguishable from loss — and
the NACK/heartbeat machinery must recover every message with no
duplicates and no reordering.
"""

import pytest

from repro.core import InformationBus, QoS
from repro.core import wire
from repro.sim import CostModel


@pytest.fixture(autouse=True)
def reset_decode_memo():
    """Per-test decode-memo stats (the memo is module-global)."""
    wire.configure_decode_memo()
    yield
    wire.configure_decode_memo()


def make_bus(corrupt_rate, hosts=4, seed=11):
    bus = InformationBus(seed=seed, cost=CostModel.ideal())
    bus.add_hosts(hosts)
    bus.lan.corrupt_rate = corrupt_rate
    return bus


def test_corrupted_frames_are_dropped_and_counted():
    bus = make_bus(corrupt_rate=0.2)
    got = []
    consumer = bus.client("node01", "mon")
    consumer.subscribe("t.>", lambda s, p, i: got.append(p))
    publisher = bus.client("node00", "pub")
    for i in range(50):
        publisher.publish(f"t.{i}", {"n": i})
    bus.run_for(30.0)
    # corruption actually happened on the wire...
    assert bus.lan.frames_corrupted > 0
    # ...and at least one daemon rejected a frame on its checksum
    assert sum(d.corrupt_dropped for d in bus.daemons.values()) > 0


def test_reliable_delivery_survives_corruption():
    """Every message arrives exactly once, in order, per subscriber."""
    bus = make_bus(corrupt_rate=0.15, hosts=5)
    inboxes = {}
    for i in range(1, 5):
        box = []
        inboxes[f"node{i:02d}"] = box
        bus.client(f"node{i:02d}", "mon").subscribe(
            "feed.>", lambda s, p, i, box=box: box.append(p["n"]))
    publisher = bus.client("node00", "pub")
    for n in range(80):
        publisher.publish("feed.tick", {"n": n})
    bus.run_for(60.0)
    assert bus.lan.frames_corrupted > 0   # the fault was exercised
    expected = list(range(80))
    for address, box in inboxes.items():
        # no duplicates, no reordering, no gaps
        assert box == expected, f"{address} saw {len(box)} messages"


def test_repair_uses_retransmission():
    """Dropped-by-checksum frames come back via the NACK machinery."""
    bus = make_bus(corrupt_rate=0.25, seed=3)
    got = []
    bus.client("node01", "mon").subscribe(
        "x.y", lambda s, p, i: got.append((p["n"], i.retransmitted)))
    publisher = bus.client("node00", "pub")
    for n in range(60):
        publisher.publish("x.y", {"n": n})
    bus.run_for(60.0)
    assert [n for n, _ in got] == list(range(60))
    # with a quarter of frames corrupted, some deliveries must have been
    # repaired rather than heard first time
    assert any(retrans for _, retrans in got)
    assert sum(d.corrupt_dropped for d in bus.daemons.values()) > 0


def test_guaranteed_delivery_survives_corruption():
    bus = make_bus(corrupt_rate=0.15, seed=7)
    got = []
    consumer = bus.client("node02", "ledger")
    consumer.subscribe("g.>", lambda s, p, i: got.append(p["n"]),
                       durable=True)
    publisher = bus.client("node00", "pub")
    for n in range(20):
        publisher.publish("g.event", {"n": n}, qos=QoS.GUARANTEED)
    bus.run_for(60.0)
    assert sorted(got) == list(range(20))
    assert len(got) == len(set(got))   # exactly once
    assert bus.daemons["node00"].guaranteed_pending() == []


def test_decode_memo_never_masks_corruption():
    """The broadcast decode memo serves repeat frames from cache, yet a
    receiver whose copy arrived bit-flipped is still rejected: corrupt
    copies hash to different bytes, so they can never hit the memo."""
    bus = make_bus(corrupt_rate=0.2, hosts=5)
    inboxes = {}
    for i in range(1, 5):
        box = []
        inboxes[f"node{i:02d}"] = box
        bus.client(f"node{i:02d}", "mon").subscribe(
            "feed.>", lambda s, p, i, box=box: box.append(p["n"]))
    publisher = bus.client("node00", "pub")
    for n in range(60):
        publisher.publish("feed.tick", {"n": n})
    bus.run_for(60.0)
    stats = wire.decode_memo_stats()
    # the cache did real work (clean copies shared parses)...
    assert stats["hits"] > 0
    # ...while corruption was happening on the same frames...
    assert bus.lan.frames_corrupted > 0
    assert sum(d.corrupt_dropped for d in bus.daemons.values()) > 0
    # ...and delivery is still exactly-once in order everywhere
    for address, box in inboxes.items():
        assert box == list(range(60)), f"{address} saw {len(box)} messages"


def test_midstream_subscribe_unsubscribe_takes_effect_immediately():
    """Subscription changes are visible on the very next delivery — the
    daemon and client match memos must not serve stale results."""
    bus = make_bus(corrupt_rate=0.0, hosts=3)
    late = []
    steady = bus.client("node01", "steady")
    steady_box = []
    steady.subscribe("feed.>", lambda s, p, i: steady_box.append(p["n"]))

    joiner = bus.client("node02", "joiner")
    state = {}

    def join():
        state["sub"] = joiner.subscribe(
            "feed.>", lambda s, p, i: late.append(p["n"]))

    def leave():
        joiner.unsubscribe(state["sub"])

    publisher = bus.client("node00", "pub")
    # 30 messages over 3 simulated seconds; join at 1.0s, leave at 2.0s
    for n in range(30):
        bus.sim.schedule(0.05 + n * 0.1, publisher.publish,
                         "feed.tick", {"n": n})
    bus.sim.schedule(1.0, join)
    bus.sim.schedule(2.0, leave)
    bus.run_for(10.0)

    assert steady_box == list(range(30))      # unaffected bystander
    assert late, "mid-stream subscriber heard nothing"
    # the joiner saw exactly the contiguous window [join, leave) —
    # no messages from before it joined, none after it left
    assert late == list(range(late[0], late[-1] + 1))
    assert late[0] >= 10 and late[-1] < 20


def test_zero_corrupt_rate_flips_nothing():
    bus = make_bus(corrupt_rate=0.0)
    got = []
    bus.client("node01", "mon").subscribe("a.b",
                                          lambda s, p, i: got.append(p))
    bus.client("node00", "pub").publish("a.b", {"ok": True})
    bus.run_for(5.0)
    assert got == [{"ok": True}]
    assert bus.lan.frames_corrupted == 0
    assert sum(d.corrupt_dropped for d in bus.daemons.values()) == 0
