"""Capstone integration: the whole Section 5 world on one bus.

Feeds, vendor adapters, News Monitor, Keyword Generator, Object
Repository (capture + query), factory equipment with a cell controller,
the legacy WIP terminal, a last-value cache, and the bus browser — all
running together, with cross-component invariants checked at the end.
"""

import pytest

from repro.adapters import (COMMAND_SUBJECT, DowJonesAdapter, DowJonesFeed,
                            ReutersAdapter, ReutersFeed, WipAdapter,
                            WipLotRecord, WipTerminal, register_wip_types)
from repro.apps import (BusBrowser, CellController, Equipment,
                        KeywordGenerator, LastValueCache, NewsMonitor)
from repro.core import InformationBus, RmiClient
from repro.objects import DataObject
from repro.repository import CaptureServer, QueryServer


@pytest.fixture(scope="module")
def world():
    bus = InformationBus(seed=42)   # the realistic cost model, not ideal
    bus.add_hosts(10)

    # trading-floor half
    dj_adapter = DowJonesAdapter(bus.client("node00", "dj"))
    rtr_adapter = ReutersAdapter(bus.client("node01", "rtr"))
    dj_feed = DowJonesFeed(bus.sim, dj_adapter.feed_sink, interval=0.5)
    rtr_feed = ReutersFeed(bus.sim, rtr_adapter.feed_sink, interval=0.7)
    monitor = NewsMonitor(bus.client("node02", "monitor"))
    generator = KeywordGenerator(bus.client("node03", "kwgen"))
    repository = bus.client("node04", "repository")
    capture = CaptureServer(repository, ["news.>", "fab5.alarm.>"])
    QueryServer(repository, capture.store, "svc.repository")

    # factory half
    litho = Equipment(bus.client("node05", "litho8"), "fab5", "litho8",
                      {"thick": (9.0, 0.5, "um")}, interval=0.4)
    controller = CellController(bus.client("node06", "cc"), "fab5",
                                limits={"thick": (8.7, 9.3)})
    terminal = WipTerminal()
    terminal.seed_lot(WipLotRecord("LOT1", "DRAM64", "LITHO", 25,
                                   "QUEUED"))
    WipAdapter(bus.client("node07", "wip"), terminal)

    # infrastructure services
    lvc = LastValueCache(bus.client("node08", "lvc"),
                         ["fab5.cc.>", "news.>"])
    browser = BusBrowser(bus.client("node09", "console"))

    # drive the WIP system over the bus while everything else runs
    commander = bus.client("node06", "commander")
    register_wip_types(commander.registry)
    bus.sim.schedule_at(3.0, lambda: commander.publish(
        COMMAND_SUBJECT, DataObject(commander.registry, "wip_command",
                                    {"verb": "track_in",
                                     "lot_id": "LOT1"})))

    bus.run_for(12.0)
    dj_feed.stop()
    rtr_feed.stop()
    litho.stop()
    bus.settle(5.0)

    return {
        "bus": bus, "dj": dj_adapter, "rtr": rtr_adapter,
        "monitor": monitor, "generator": generator, "capture": capture,
        "controller": controller, "terminal": terminal, "lvc": lvc,
        "browser": browser,
    }


def test_stories_flowed_end_to_end(world):
    published = world["dj"].inbound + world["rtr"].inbound
    assert published > 10
    assert world["monitor"].stories_received == published
    assert world["capture"].store.count("story") == published


def test_keyword_generator_enriched_the_monitor(world):
    assert world["generator"].properties_published > 0
    assert world["monitor"].properties_received == \
        world["generator"].properties_published
    enriched = [i for i in range(len(world["monitor"].stories))
                if world["monitor"].keywords_for(i)]
    assert enriched


def test_factory_monitored_and_alarms_captured(world):
    controller = world["controller"]
    assert controller.readings_seen > 20
    assert controller.reading("litho8", "thick") is not None
    # the noisy station breached its limits at least once ...
    assert controller.alarms_raised > 0
    # ... and every alarm landed in the repository (same capture server
    # as the news — one repository, many subjects)
    assert world["capture"].store.count("equipment_alarm") == \
        controller.alarms_raised


def test_wip_command_executed_against_legacy_system(world):
    assert world["terminal"].commands_processed >= 3
    # the lot was tracked in
    world["terminal"].send("1")
    world["terminal"].send("LOT1")
    assert "STATUS  : PROC" in "\n".join(world["terminal"].screen())


def test_lvc_tracks_everything(world):
    lvc = world["lvc"]
    assert lvc._current("fab5.cc.litho8.thick") is not None
    assert len(lvc) > 2     # sensor subject + several news subjects


def test_browser_sees_services_and_traffic(world):
    browser = world["browser"]
    subjects = browser.service_subjects()
    assert "svc.repository" in subjects
    assert "svc.keywords" in subjects
    assert "svc.lvc" in subjects
    assert browser.total_messages() > 50
    top = {s.subject for s in browser.top_subjects(20)}
    assert any(s.startswith("news.") for s in top)
    assert any(s.startswith("fab5.cc.") for s in top)


def test_repository_queryable_over_rmi(world):
    bus = world["bus"]
    rmi = RmiClient(bus.client("node02", "analyst"), "svc.repository")
    out = {}
    rmi.call("tally", {"type_name": "story"},
             lambda v, e: out.update(tally=(v, e)))
    bus.run_for(3.0)
    value, error = out["tally"]
    assert error is None
    assert value == world["monitor"].stories_received


def test_no_reliable_layer_losses(world):
    """On a healthy (if realistic) network, nothing was lost anywhere."""
    bus = world["bus"]
    for address, daemon in bus.daemons.items():
        for session in daemon._receiver.sessions():
            stats = daemon.reliable_stats(session)
            assert stats.gaps_skipped == 0, (address, session)
            assert stats.messages_lost == 0, (address, session)
