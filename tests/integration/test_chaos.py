"""Chaos test: random crashes, recoveries, and partitions over a long run.

A seeded fault schedule hammers a small "24 by 7" deployment while
publishers keep publishing.  At the end (after healing and quiescing),
the paper's delivery contracts must hold:

* reliable: per-session FIFO at every subscriber, no duplicates;
* guaranteed: every message a publisher logged is stored by the durable
  consumer exactly once, with nothing left unacknowledged.
"""

import pytest

from repro.core import InformationBus, QoS
from repro.objects import (AttributeSpec, DataObject, TypeDescriptor,
                           standard_registry)
from repro.repository import CaptureServer
from repro.sim import CostModel


def chaotic_cost():
    cost = CostModel.ideal()
    cost.loss_probability = 0.02
    cost.duplicate_probability = 0.01
    cost.reorder_jitter = 0.002
    return cost


@pytest.mark.parametrize("seed", [101, 202, 303])
def test_delivery_contracts_survive_chaos(seed):
    bus = InformationBus(seed=seed, cost=chaotic_cost())
    hosts = [f"node{i:02d}" for i in range(5)]
    for address in hosts:
        bus.add_host(address)

    reg = standard_registry()
    reg.register(TypeDescriptor(
        "event", attributes=[AttributeSpec("n", "int")]))

    publisher = bus.client("node00", "feed", registry=reg)
    gd_publisher = bus.client("node01", "alarms", registry=reg)

    # a reliable subscriber on node02 records (session, seq) per delivery
    reliable_log = []
    bus.client("node02", "mon").subscribe(
        "chaos.rel.>",
        lambda s, o, i: reliable_log.append((i.session, i.seq, o.get("n"))))

    # a durable capture server on node03 is the guaranteed consumer
    capture = CaptureServer(bus.client("node03", "db"), ["chaos.gd.>"])

    rng = bus.sim.rng("chaos.schedule")
    published_reliable = 0
    published_guaranteed = 0

    def maybe(prob):
        return rng.random() < prob

    # 30 simulated seconds of traffic with injected faults.  node00 and
    # node01 (the publishers) stay up; consumers and bystanders churn.
    victims = ["node02", "node03", "node04"]
    for step in range(120):
        at = step * 0.25

        def tick(step=step):
            nonlocal published_reliable, published_guaranteed
            # publishers publish whenever their host is up
            if bus.host("node00").up:
                publisher.publish(
                    "chaos.rel.data",
                    DataObject(reg, "event", n=published_reliable))
                published_reliable += 1
            if bus.host("node01").up and step % 3 == 0:
                gd_publisher.publish(
                    "chaos.gd.data",
                    DataObject(reg, "event", n=published_guaranteed),
                    qos=QoS.GUARANTEED)
                published_guaranteed += 1
            # random faults
            if maybe(0.08):
                victim = rng.choice(victims)
                if bus.host(victim).up:
                    bus.crash_host(victim)
                else:
                    bus.recover_host(victim)
            if maybe(0.05) and not bus.lan.partitioned():
                side = set(rng.sample(hosts, rng.randint(1, 2)))
                bus.partition(side)
            elif maybe(0.2):
                bus.heal()

        bus.sim.schedule_at(at, tick)

    bus.run_for(32.0)
    # end of chaos: heal everything and let the protocols settle
    bus.heal()
    for address in victims:
        if not bus.host(address).up:
            bus.recover_host(address)
    bus.settle(30.0)

    assert published_reliable > 50
    assert published_guaranteed > 10

    # ------------------------------------------------------------------
    # reliable contract: FIFO per session, no duplicates
    # ------------------------------------------------------------------
    seqs_by_session = {}
    for session, seq, n in reliable_log:
        seqs_by_session.setdefault(session, []).append((seq, n))
    for session, entries in seqs_by_session.items():
        seqs = [seq for seq, _ in entries]
        assert seqs == sorted(seqs), f"{session}: out of order"
        assert len(seqs) == len(set(seqs)), f"{session}: duplicates"
        payload_ns = [n for _, n in entries]
        assert payload_ns == sorted(payload_ns), \
            f"{session}: payload order violated"

    # ------------------------------------------------------------------
    # guaranteed contract: everything acked, stored exactly once
    # ------------------------------------------------------------------
    assert bus.daemon("node01").guaranteed_pending() == [], \
        "guaranteed messages left unacknowledged after healing"
    stored = capture.store.query("event")
    stored_ns = sorted(o.get("n") for o in stored)
    assert stored_ns == list(range(published_guaranteed)), \
        f"stored {len(stored_ns)}/{published_guaranteed} guaranteed events"
