"""Tests for the legacy WIP terminal and the virtual-user adapter."""

import pytest

from repro.adapters import (COMMAND_SUBJECT, WipAdapter, WipLotRecord,
                            WipTerminal, register_wip_types, status_subject)
from repro.core import InformationBus
from repro.objects import DataObject
from repro.sim import CostModel


# ----------------------------------------------------------------------
# the legacy terminal by itself
# ----------------------------------------------------------------------

def screen_text(terminal):
    return "\n".join(terminal.screen())


def test_menu_screen():
    terminal = WipTerminal()
    text = screen_text(terminal)
    assert "MAIN MENU" in text
    assert "1. LOT INQUIRY" in text


def test_inquiry_found_and_not_found():
    terminal = WipTerminal()
    terminal.seed_lot(WipLotRecord("LOT42", "DRAM64", "LITHO", 25, "QUEUED"))
    terminal.send("1")
    assert "ENTER LOT ID" in screen_text(terminal)
    terminal.send("lot42")                      # case-insensitive input
    text = screen_text(terminal)
    assert "LOT ID  : LOT42" in text
    assert "STATUS  : QUEUED" in text
    terminal.send("")                           # back to menu
    terminal.send("1")
    terminal.send("GHOST")
    assert "ERROR 404" in screen_text(terminal)


def test_new_lot_track_in_track_out_cycle():
    terminal = WipTerminal()
    terminal.send("5")
    terminal.send("LOT1,DRAM64,LITHO,25")
    assert "LOT CREATED" in screen_text(terminal)
    terminal.send("")
    terminal.send("2")
    terminal.send("LOT1")
    assert "TRACK-IN COMPLETE" in screen_text(terminal)
    assert "STATUS  : PROC" in screen_text(terminal)
    terminal.send("")
    terminal.send("3")
    terminal.send("LOT1,ETCH")
    text = screen_text(terminal)
    assert "TRACK-OUT COMPLETE" in text
    assert "STEP    : ETCH" in text
    assert "STATUS  : QUEUED" in text


def test_hold_blocks_track_in():
    terminal = WipTerminal()
    terminal.seed_lot(WipLotRecord("LOT2", "SRAM", "ETCH", 10, "QUEUED"))
    terminal.send("4")
    terminal.send("LOT2")
    assert "LOT PLACED ON HOLD" in screen_text(terminal)
    terminal.send("")
    terminal.send("2")
    terminal.send("LOT2")
    assert "ERROR 409" in screen_text(terminal)


def test_ship_step_completes_lot():
    terminal = WipTerminal()
    terminal.seed_lot(WipLotRecord("LOT3", "SRAM", "TEST", 10, "QUEUED"))
    terminal.send("3")
    terminal.send("LOT3,SHIP")
    assert "STATUS  : DONE" in screen_text(terminal)


def test_duplicate_lot_rejected():
    terminal = WipTerminal()
    terminal.seed_lot(WipLotRecord("LOT4", "SRAM", "ETCH", 10, "QUEUED"))
    terminal.send("5")
    terminal.send("LOT4,SRAM,ETCH,10")
    assert "ERROR 409" in screen_text(terminal)


@pytest.mark.parametrize("bad", ["LOT5,SRAM,ETCH", "LOT5,SRAM,ETCH,ten",
                                 ",,,"])
def test_bad_newlot_input(bad):
    terminal = WipTerminal()
    terminal.send("5")
    terminal.send(bad)
    assert "ERROR 400" in screen_text(terminal)


def test_invalid_menu_selection():
    terminal = WipTerminal()
    terminal.send("9")
    assert "INVALID SELECTION" in screen_text(terminal)


# ----------------------------------------------------------------------
# the adapter as a virtual user
# ----------------------------------------------------------------------

@pytest.fixture
def world():
    bus = InformationBus(seed=1, cost=CostModel.ideal())
    bus.add_hosts(3)
    terminal = WipTerminal()
    terminal.seed_lot(WipLotRecord("LOT42", "DRAM64", "LITHO", 25, "QUEUED"))
    adapter = WipAdapter(bus.client("node00", "wip"), terminal)
    commander = bus.client("node01", "cell_controller")
    register_wip_types(commander.registry)
    status = []
    bus.client("node02", "dashboard").subscribe(
        "fab5.wip.status.>", lambda s, o, i: status.append((s, o)))
    return bus, terminal, adapter, commander, status


def command(bus, commander, verb, **fields):
    obj = DataObject(commander.registry, "wip_command",
                     dict({"verb": verb}, **fields))
    commander.publish(COMMAND_SUBJECT, obj)
    bus.settle(1.0)


def test_inquire_publishes_lot_object(world):
    bus, terminal, adapter, commander, status = world
    command(bus, commander, "inquire", lot_id="LOT42")
    assert len(status) == 1
    subject, lot = status[0]
    assert subject == status_subject("LOT42")
    assert lot.is_a("wip_lot")
    assert lot.get("product") == "DRAM64"
    assert lot.get("qty") == 25
    assert adapter.inbound == 1 and adapter.outbound == 1


def test_full_lifecycle_via_bus(world):
    bus, terminal, adapter, commander, status = world
    command(bus, commander, "new_lot", lot_id="LOT9", product="SRAM",
            step="LITHO", qty=50)
    command(bus, commander, "track_in", lot_id="LOT9")
    command(bus, commander, "track_out", lot_id="LOT9", step="ETCH")
    statuses = [o.get("status") for _, o in status]
    assert statuses == ["QUEUED", "PROC", "QUEUED"]
    steps = [o.get("step") for _, o in status]
    assert steps == ["LITHO", "LITHO", "ETCH"]
    assert terminal.lot_count() == 2


def test_error_screen_becomes_error_message(world):
    bus, terminal, adapter, commander, status = world
    command(bus, commander, "inquire", lot_id="GHOST")
    subject, payload = status[0]
    assert subject == status_subject("GHOST")
    assert "ERROR 404" in payload["error"]
    assert adapter.errors == 1


def test_unknown_verb_reports_error(world):
    bus, terminal, adapter, commander, status = world
    command(bus, commander, "explode", lot_id="LOT42")
    _, payload = status[0]
    assert "unknown verb" in payload["error"]


def test_terminal_stays_usable_after_adapter_traffic(world):
    """The adapter always returns the terminal to the menu."""
    bus, terminal, adapter, commander, status = world
    command(bus, commander, "inquire", lot_id="LOT42")
    assert "MAIN MENU" in screen_text(terminal)


def test_lot_list_report_screen():
    terminal = WipTerminal()
    terminal.seed_lot(WipLotRecord("LOT1", "DRAM64", "LITHO", 25, "QUEUED"))
    terminal.seed_lot(WipLotRecord("LOT2", "SRAM", "ETCH", 10, "HOLD"))
    terminal.send("6")
    text = screen_text(terminal)
    assert "LOT LIST REPORT" in text
    assert "LOT1" in text and "LOT2" in text
    assert "TOTAL LOTS: 2" in text
    terminal.send("")
    assert "MAIN MENU" in screen_text(terminal)


def test_empty_lot_list_report():
    terminal = WipTerminal()
    terminal.send("6")
    assert "NO LOTS ON FILE" in screen_text(terminal)


def test_list_lots_verb_publishes_every_lot(world):
    bus, terminal, adapter, commander, status = world
    terminal.seed_lot(WipLotRecord("LOT77", "SRAM", "ETCH", 10, "HOLD"))
    reports = []
    bus.client("node01", "report_listener").subscribe(
        "fab5.wip.report", lambda s, o, i: reports.append(o))
    command(bus, commander, "list_lots")
    lots = [o for _, o in status]
    assert {lot.get("lot_id") for lot in lots} == {"LOT42", "LOT77"}
    assert all(lot.is_a("wip_lot") for lot in lots)
    assert reports == [{"lots": 2}]
    assert "MAIN MENU" in screen_text(terminal)
