"""Tests for the news feeds and vendor adapters (Figure 3)."""

import pytest

from repro.adapters import (DowJonesAdapter, DowJonesFeed, ReutersAdapter,
                            ReutersFeed, register_news_types)
from repro.core import InformationBus
from repro.sim import CostModel, Simulator


@pytest.fixture
def bus():
    b = InformationBus(seed=1, cost=CostModel.ideal())
    b.add_hosts(3)
    return b


# ----------------------------------------------------------------------
# feed generators
# ----------------------------------------------------------------------

def test_feeds_emit_on_schedule():
    sim = Simulator(seed=2)
    dj_raw, rtr_raw = [], []
    DowJonesFeed(sim, dj_raw.append, interval=0.5)
    ReutersFeed(sim, rtr_raw.append, interval=1.0)
    sim.run_until(5.0)
    assert len(dj_raw) == 10
    assert len(rtr_raw) == 5


def test_feeds_are_deterministic():
    def run():
        sim = Simulator(seed=3)
        out = []
        DowJonesFeed(sim, out.append, interval=0.5)
        sim.run_until(3.0)
        return out
    assert run() == run()


def test_feed_stop():
    sim = Simulator(seed=4)
    out = []
    feed = DowJonesFeed(sim, out.append, interval=0.5)
    sim.run_until(1.2)
    feed.stop()
    sim.run_until(5.0)
    assert len(out) == 2


def test_vendor_formats_differ():
    sim = Simulator(seed=5)
    dj, rtr = [], []
    DowJonesFeed(sim, dj.append, interval=0.5)
    ReutersFeed(sim, rtr.append, interval=0.5)
    sim.run_until(1.0)
    assert dj[0].startswith("DJ|")
    assert rtr[0].startswith("RTR ")
    assert "\n" in rtr[0] and "\n" not in dj[0]


# ----------------------------------------------------------------------
# parsing
# ----------------------------------------------------------------------

def test_dowjones_parse_full_record(bus):
    adapter = DowJonesAdapter(bus.client("node00", "dj"))
    raw = ("DJ|DJ000001|equity|gmc|GM rises on earnings|Body text."
           "|IG:autos,semis|CC:us,jp|PG:N3")
    story = adapter.parse(raw)
    assert story.type_name == "dowjones_story"
    assert story.is_a("story")
    assert story.get("djcode") == "DJ000001"
    assert story.get("topic") == "gmc"
    assert story.get("industry_groups") == ["autos", "semis"]
    assert story.get("country_codes") == ["us", "jp"]
    assert story.get("page") == "N3"
    assert story.get("sources") == ["Dow Jones"]


@pytest.mark.parametrize("junk", [
    "", "garbage", "RTR not dj", "DJ|onlythree|fields",
    "DJ||equity|gmc|headline|body",       # empty code
])
def test_dowjones_rejects_junk(bus, junk):
    adapter = DowJonesAdapter(bus.client("node00", "dj"))
    assert adapter.parse(junk) is None
    assert adapter.errors == 1


def test_reuters_parse_full_record(bus):
    adapter = ReutersAdapter(bus.client("node00", "rtr"))
    raw = "\n".join([
        "RTR GMC.N P2",
        "CAT: equity",
        "TOP: gmc",
        "HEADLINE: GM rallies on export data",
        "BODY: Some body.",
        "GROUPS: autos;tech",
        "COUNTRY: us",
        "ENDS",
    ])
    story = adapter.parse(raw)
    assert story.type_name == "reuters_story"
    assert story.get("ric") == "GMC.N"
    assert story.get("priority") == 2
    assert story.get("industry_groups") == ["autos", "tech"]


@pytest.mark.parametrize("junk", [
    "", "DJ|nope", "RTR GMC.N", "RTR GMC.N Px\nCAT: equity",
    "RTR GMC.N P1\nCAT: equity\nbadline\nENDS",
    "RTR GMC.N P1\nCAT: equity\nENDS",    # missing TOP/HEADLINE
])
def test_reuters_rejects_junk(bus, junk):
    adapter = ReutersAdapter(bus.client("node00", "rtr"))
    assert adapter.parse(junk) is None
    assert adapter.errors == 1


# ----------------------------------------------------------------------
# end-to-end: feeds -> adapters -> bus -> subscriber
# ----------------------------------------------------------------------

def test_both_adapters_publish_common_supertype(bus):
    dj_adapter = DowJonesAdapter(bus.client("node00", "dj"))
    rtr_adapter = ReutersAdapter(bus.client("node01", "rtr"))
    dj_feed = DowJonesFeed(bus.sim, dj_adapter.feed_sink, interval=0.5)
    rtr_feed = ReutersFeed(bus.sim, rtr_adapter.feed_sink, interval=0.7)
    received = []
    monitor = bus.client("node02", "monitor")
    monitor.subscribe("news.>", lambda s, o, i: received.append((s, o)))
    bus.run_for(5.0)
    dj_feed.stop()
    rtr_feed.stop()
    bus.settle()
    assert dj_adapter.inbound > 0 and rtr_adapter.inbound > 0
    assert len(received) == dj_adapter.inbound + rtr_adapter.inbound
    types = {o.type_name for _, o in received}
    assert types == {"dowjones_story", "reuters_story"}
    # the monitor can treat them all as the common supertype (P2)
    assert all(o.is_a("story") for _, o in received)
    # subjects carry the story's primary topic
    assert all(s == f"news.{o.get('category')}.{o.get('topic')}"
               for s, o in received)


def test_subscriber_can_filter_by_category(bus):
    adapter = DowJonesAdapter(bus.client("node00", "dj"))
    DowJonesFeed(bus.sim, adapter.feed_sink, interval=0.3)
    equity_only = []
    bus.client("node01", "mon").subscribe(
        "news.equity.*", lambda s, o, i: equity_only.append(o))
    bus.run_for(6.0)
    bus.settle()
    assert equity_only
    assert all(o.get("category") == "equity" for o in equity_only)


def test_register_news_types_idempotent(bus):
    client = bus.client("node00", "x")
    register_news_types(client.registry)
    register_news_types(client.registry)
    assert client.registry.is_subtype("reuters_story", "story")
