"""Tests for the TDL evaluator: special forms, functions, stdlib."""

import pytest

from repro.tdl import (Interpreter, Symbol, TdlArityError, TdlError,
                       TdlNameError, TdlSyntaxError)


@pytest.fixture
def tdl():
    return Interpreter()


def test_self_evaluating(tdl):
    assert tdl.eval_text("42") == 42
    assert tdl.eval_text('"s"') == "s"
    assert tdl.eval_text("t") is True
    assert tdl.eval_text("nil") is None


def test_arithmetic(tdl):
    assert tdl.eval_text("(+ 1 2 3)") == 6
    assert tdl.eval_text("(- 10 3 2)") == 5
    assert tdl.eval_text("(- 5)") == -5
    assert tdl.eval_text("(* 2 3 4)") == 24
    assert tdl.eval_text("(/ 10 4)") == 2.5
    assert tdl.eval_text("(mod 7 3)") == 1
    assert tdl.eval_text("(max 1 5 3)") == 5


def test_division_by_zero(tdl):
    with pytest.raises(TdlError):
        tdl.eval_text("(/ 1 0)")


def test_comparisons(tdl):
    assert tdl.eval_text("(< 1 2 3)") is True
    assert tdl.eval_text("(< 1 3 2)") is False
    assert tdl.eval_text("(= 2 2 2)") is True
    assert tdl.eval_text("(/= 1 2)") is True
    assert tdl.eval_text("(not nil)") is True


def test_define_and_setq(tdl):
    assert tdl.eval_text("(define x 10) (setq x (+ x 1)) x") == 11


def test_setq_unbound_raises(tdl):
    with pytest.raises(TdlNameError):
        tdl.eval_text("(setq ghost 1)")


def test_unbound_symbol_raises(tdl):
    with pytest.raises(TdlNameError):
        tdl.eval_text("ghost")


def test_if_and_truthiness(tdl):
    assert tdl.eval_text('(if t "yes" "no")') == "yes"
    assert tdl.eval_text('(if nil "yes" "no")') == "no"
    assert tdl.eval_text('(if 0 "yes" "no")') == "yes"   # 0 is truthy (CLOS)
    assert tdl.eval_text("(if nil 1)") is None


def test_cond_when_unless(tdl):
    assert tdl.eval_text(
        '(define x 5) (cond ((< x 0) "neg") ((= x 5) "five") (t "other"))'
    ) == "five"
    assert tdl.eval_text('(when t 1 2)') == 2
    assert tdl.eval_text('(when nil 1)') is None
    assert tdl.eval_text('(unless nil "ran")') == "ran"


def test_let_and_let_star(tdl):
    assert tdl.eval_text("(let ((a 1) (b 2)) (+ a b))") == 3
    assert tdl.eval_text("(let* ((a 1) (b (+ a 1))) b)") == 2
    # plain let evaluates bindings in the outer scope
    assert tdl.eval_text(
        "(define a 10) (let ((a 1) (b a)) b)") == 10


def test_and_or_short_circuit(tdl):
    assert tdl.eval_text("(and 1 2 3)") == 3
    assert tdl.eval_text("(and 1 nil 3)") is None
    assert tdl.eval_text("(or nil 2 3)") == 2
    assert tdl.eval_text("(or nil nil)") is None


def test_lambda_and_defun(tdl):
    assert tdl.eval_text("((lambda (x y) (+ x y)) 3 4)") == 7
    assert tdl.eval_text("(defun sq (x) (* x x)) (sq 9)") == 81


def test_closures(tdl):
    assert tdl.eval_text(
        "(defun adder (n) (lambda (x) (+ x n)))"
        "(define add5 (adder 5))"
        "(add5 3)") == 8


def test_recursion(tdl):
    assert tdl.eval_text(
        "(defun fact (n) (if (<= n 1) 1 (* n (fact (- n 1)))))"
        "(fact 10)") == 3628800


def test_rest_args(tdl):
    assert tdl.eval_text(
        "(defun count-args (&rest xs) (length xs)) (count-args 1 2 3)") == 3
    assert tdl.eval_text(
        "(defun head-and-rest (a &rest xs) (list a xs))"
        "(head-and-rest 1 2 3)") == [1, [2, 3]]


def test_arity_errors(tdl):
    tdl.eval_text("(defun two (a b) a)")
    with pytest.raises(TdlArityError):
        tdl.eval_text("(two 1)")
    with pytest.raises(TdlArityError):
        tdl.eval_text("(two 1 2 3)")


def test_while_loop(tdl):
    assert tdl.eval_text(
        "(define n 0) (while (< n 5) (setq n (+ n 1))) n") == 5


def test_dolist(tdl):
    assert tdl.eval_text(
        "(define total 0)"
        "(dolist (x (list 1 2 3)) (setq total (+ total x)))"
        "total") == 6


def test_list_builtins(tdl):
    assert tdl.eval_text("(length (list 1 2 3))") == 3
    assert tdl.eval_text("(nth 1 (list 10 20 30))") == 20
    assert tdl.eval_text("(nth 9 (list 1))") is None
    assert tdl.eval_text("(first (list 1 2))") == 1
    assert tdl.eval_text("(rest (list 1 2 3))") == [2, 3]
    assert tdl.eval_text("(append (list 1) (list 2 3))") == [1, 2, 3]
    assert tdl.eval_text("(cons 0 (list 1))") == [0, 1]
    assert tdl.eval_text("(reverse (list 1 2))") == [2, 1]
    assert tdl.eval_text("(member 2 (list 1 2))") is True
    assert tdl.eval_text("(mapcar (lambda (x) (* x x)) (list 1 2 3))") == \
        [1, 4, 9]
    assert tdl.eval_text(
        "(filter (lambda (x) (> x 1)) (list 1 2 3))") == [2, 3]
    assert tdl.eval_text("(sort (list 3 1 2))") == [1, 2, 3]
    assert tdl.eval_text("(range 3)") == [0, 1, 2]


def test_string_builtins(tdl):
    assert tdl.eval_text('(concat "a" "b" 3)') == "ab3"
    assert tdl.eval_text('(string-upcase "abc")') == "ABC"
    assert tdl.eval_text('(substring "hello" 1 3)') == "el"
    assert tdl.eval_text('(string-search "ll" "hello")') == 2
    assert tdl.eval_text('(string-split "a,b" ",")') == ["a", "b"]
    assert tdl.eval_text('(string-join "-" (list "a" "b"))') == "a-b"


def test_map_builtins(tdl):
    assert tdl.eval_text(
        '(define m (make-map)) (map-set! m "k" 1) (map-get m "k")') == 1
    assert tdl.eval_text('(map-keys m)') == ["k"]
    assert tdl.eval_text('(map-has m "k")') is True
    assert tdl.eval_text('(map-get m "zz" "dflt")') == "dflt"


def test_print_collects_output(tdl):
    tdl.eval_text('(print "hello" 42) (print "again")')
    assert tdl.eval_text("(tdl-output)") == ["hello 42", "again"]
    tdl.eval_text("(clear-output)")
    assert tdl.eval_text("(tdl-output)") == []


def test_quote(tdl):
    assert tdl.eval_text("'(1 2)") == [1, 2]
    assert tdl.eval_text("'sym") == Symbol("sym")


def test_calling_non_callable_raises(tdl):
    with pytest.raises(TdlError):
        tdl.eval_text("(42 1)")


def test_python_interop(tdl):
    tdl.define("twice", lambda x: 2 * x)
    assert tdl.eval_text("(twice 21)") == 42


def test_empty_list_is_nil(tdl):
    assert tdl.eval_text("()") is None


def test_malformed_special_forms(tdl):
    for bad in ["(define)", "(if t)", "(let (x) 1)", "(lambda)",
                "(setq 1 2)"]:
        with pytest.raises(TdlSyntaxError):
            tdl.eval_text(bad)


def test_remaining_stdlib_builtins(tdl):
    assert tdl.eval_text("(last (list 1 2 3))") == 3
    assert tdl.eval_text("(last (list))") is None
    assert tdl.eval_text("(min 3 1 2)") == 1
    assert tdl.eval_text("(abs -7)") == 7
    assert tdl.eval_text('(string-trim "  x  ")') == "x"
    assert tdl.eval_text('(string-downcase "ABC")') == "abc"
    assert tdl.eval_text("(format-number 3.14159 3)") == "3.142"
    assert tdl.eval_text("(symbol-name 'hello)") == "hello"
    assert tdl.eval_text("(reduce (lambda (a b) (+ a b)) (list 1 2 3) 10)") \
        == 16
    assert tdl.eval_text(
        "(sort (list 3 1 2) (lambda (x) (- x)))") == [3, 2, 1]
