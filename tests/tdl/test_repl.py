"""Tests for the TDL REPL (driven through StringIO)."""

import io

from repro.tdl.repl import format_result, repl


def run_session(script: str) -> str:
    stdout = io.StringIO()
    repl(stdin=io.StringIO(script), stdout=stdout)
    return stdout.getvalue()


def test_evaluates_and_prints_results():
    out = run_session("(+ 1 2)\n")
    assert "3" in out
    assert out.rstrip().endswith("bye")


def test_multiline_form():
    out = run_session("(defclass note (object)\n"
                      "  ((title :type string)))\n"
                      "(make-instance 'note :title \"hi\")\n")
    assert "<note>" in out
    assert 'title: "hi"' in out


def test_print_output_is_surfaced():
    out = run_session('(print "hello from tdl")\n')
    assert "hello from tdl" in out


def test_errors_do_not_kill_the_loop():
    out = run_session("(undefined-function 1)\n(+ 2 2)\n")
    assert "error:" in out
    assert "4" in out


def test_types_command():
    out = run_session(",types\n")
    assert "object" in out
    assert "property" in out


def test_exit_form():
    out = run_session("(exit)\n(+ 1 1)\n")   # nothing after exit runs
    assert "2" not in out
    assert "bye" in out


def test_state_persists_across_lines():
    out = run_session("(define x 41)\n(+ x 1)\n")
    assert "42" in out


def test_format_result_variants():
    assert format_result(None) == "nil"
    assert format_result(True) == "t"
    assert format_result("s") == '"s"'
    assert format_result([1, 2]) == "(1 2)"
    assert format_result(3.5) == "3.5"
