"""Tests for the TDL reader."""

import pytest

from repro.tdl import Keyword, Symbol, TdlSyntaxError, read, read_all, to_source


def test_read_atoms():
    assert read("42") == 42
    assert read("-17") == -17
    assert read("3.5") == 3.5
    assert read("t") is True
    assert read("nil") is None
    assert read('"hello"') == "hello"
    assert read("foo") == Symbol("foo")
    assert isinstance(read("foo"), Symbol)
    assert read(":type") == Keyword("type")
    assert isinstance(read(":type"), Keyword)


def test_read_list():
    form = read("(+ 1 (a b) 2)")
    assert form == [Symbol("+"), 1, [Symbol("a"), Symbol("b")], 2]


def test_read_quote_sugar():
    assert read("'x") == [Symbol("quote"), Symbol("x")]
    assert read("'(1 2)") == [Symbol("quote"), [1, 2]]


def test_string_escapes():
    assert read(r'"a\"b\n\t\\"') == 'a"b\n\t\\'


def test_comments_skipped():
    forms = read_all("; leading comment\n(a) ; trailing\n(b)")
    assert forms == [[Symbol("a")], [Symbol("b")]]


def test_multiline_string_tracks_lines():
    assert read('"line1\nline2"') == "line1\nline2"


def test_read_all_multiple_forms():
    assert read_all("1 2 3") == [1, 2, 3]


def test_read_rejects_multiple_forms():
    with pytest.raises(TdlSyntaxError):
        read("1 2")


@pytest.mark.parametrize("bad", ["(", ")", "(a (b)", '"unterminated',
                                 "(a))" ])
def test_malformed_input(bad):
    with pytest.raises(TdlSyntaxError):
        read_all(bad)


def test_symbols_with_special_chars():
    assert read("slot-value") == Symbol("slot-value")
    assert read("string-upcase") == Symbol("string-upcase")
    assert read("/=") == Symbol("/=")
    assert read("&rest") == Symbol("&rest")


def test_colon_alone_is_a_symbol():
    assert isinstance(read(":"), Symbol)


def test_to_source_roundtrip():
    source = '(defclass story (object) ((headline :type string)) :doc "a\\nb")'
    form = read(source)
    assert read(to_source(form)) == form


def test_to_source_scalars():
    assert to_source(True) == "t"
    assert to_source(None) == "nil"
    assert to_source(Keyword("k")) == ":k"
    assert to_source([1, "two"]) == '(1 "two")'
