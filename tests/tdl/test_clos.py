"""Tests for TDL's CLOS subset: defclass, generic dispatch, bus integration."""

import pytest

from repro.objects import DataObject, standard_registry
from repro.tdl import Interpreter, TdlDispatchError, TdlSyntaxError


@pytest.fixture
def tdl():
    interp = Interpreter()
    interp.eval_text("""
        (defclass story (object)
          ((headline :type string)
           (body :type string :required nil)
           (codes :type (list string) :required nil))
          :doc "a news story")
        (defclass reuters-story (story)
          ((ric :type string :required nil)))
    """)
    return interp


def test_defclass_registers_bus_type(tdl):
    descriptor = tdl.registry.get("story")
    assert descriptor.doc == "a news story"
    attr = descriptor.own_attribute("codes")
    assert attr.type_name == "list<string>"
    assert attr.required is False
    assert tdl.registry.is_subtype("reuters-story", "story")


def test_make_instance_builds_data_object(tdl):
    story = tdl.eval_text(
        '(make-instance \'story :headline "Chips up" '
        ':codes (list "equity" "gmc"))')
    assert isinstance(story, DataObject)
    assert story.type_name == "story"
    assert story.get("codes") == ["equity", "gmc"]


def test_make_instance_validates(tdl):
    with pytest.raises(Exception):
        tdl.eval_text("(make-instance 'story :headline 42)")
    with pytest.raises(Exception):
        tdl.eval_text('(make-instance \'story :bogus "x")')


def test_slot_access(tdl):
    assert tdl.eval_text(
        '(define s (make-instance \'story :headline "A"))'
        "(set-slot-value! s 'body \"text\")"
        "(slot-value s 'body)") == "text"


def test_mop_from_tdl(tdl):
    assert tdl.eval_text(
        '(define s (make-instance \'reuters-story :headline "A"))'
        "(attribute-names s)") == ["headline", "body", "codes", "ric"]
    assert tdl.eval_text("(attribute-type s 'codes)") == "list<string>"
    assert tdl.eval_text("(type-of s)") == "reuters-story"
    assert tdl.eval_text("(is-a s 'story)") is True
    assert tdl.eval_text("(is-a s 'property)") is False
    assert "story" in tdl.eval_text("(known-types)")
    assert tdl.eval_text("(subtypes-of 'story)") == ["reuters-story"]
    desc = tdl.eval_text("(describe-type 'story)")
    assert desc["name"] == "story"


def test_single_dispatch(tdl):
    tdl.eval_text("""
        (defmethod label ((s story)) "story")
        (defmethod label ((s reuters-story)) "reuters")
    """)
    assert tdl.eval_text(
        '(label (make-instance \'story :headline "x"))') == "story"
    assert tdl.eval_text(
        '(label (make-instance \'reuters-story :headline "x"))') == "reuters"


def test_inherited_method_applies_to_subtype(tdl):
    tdl.eval_text('(defmethod headline-of ((s story)) (slot-value s \'headline))')
    assert tdl.eval_text(
        '(headline-of (make-instance \'reuters-story :headline "hi"))') == "hi"


def test_call_next_method(tdl):
    tdl.eval_text("""
        (defmethod describe ((s story)) "base")
        (defmethod describe ((s reuters-story))
          (concat "reuters+" (call-next-method)))
    """)
    assert tdl.eval_text(
        '(describe (make-instance \'reuters-story :headline "x"))') == \
        "reuters+base"


def test_call_next_method_exhausted(tdl):
    tdl.eval_text('(defmethod lone ((s story)) (call-next-method))')
    with pytest.raises(TdlDispatchError):
        tdl.eval_text('(lone (make-instance \'story :headline "x"))')


def test_no_applicable_method(tdl):
    tdl.eval_text('(defmethod only-stories ((s story)) t)')
    with pytest.raises(TdlDispatchError):
        tdl.eval_text("(only-stories 42)")


def test_dispatch_on_fundamentals(tdl):
    tdl.eval_text("""
        (defmethod kind ((x integer)) "int")
        (defmethod kind ((x string)) "str")
        (defmethod kind ((x list)) "list")
        (defmethod kind (x) "other")
    """)
    assert tdl.eval_text("(kind 3)") == "int"
    assert tdl.eval_text('(kind "s")') == "str"
    assert tdl.eval_text("(kind (list 1))") == "list"
    assert tdl.eval_text("(kind 1.5)") == "other"


def test_multiple_dispatch(tdl):
    tdl.eval_text("""
        (defmethod pair ((a story) (b story)) "story-story")
        (defmethod pair ((a reuters-story) (b story)) "reuters-story")
        (defmethod pair ((a story) (b integer)) "story-int")
    """)
    make = '(make-instance \'{} :headline "x")'
    assert tdl.eval_text(
        f"(pair {make.format('story')} {make.format('story')})") == \
        "story-story"
    assert tdl.eval_text(
        f"(pair {make.format('reuters-story')} {make.format('story')})") == \
        "reuters-story"
    assert tdl.eval_text(f"(pair {make.format('story')} 3)") == "story-int"


def test_method_redefinition_replaces(tdl):
    tdl.eval_text('(defmethod v ((s story)) "old")')
    tdl.eval_text('(defmethod v ((s story)) "new")')
    assert tdl.eval_text('(v (make-instance \'story :headline "x"))') == "new"
    assert len(tdl.generics["v"].methods) == 1


def test_defgeneric_creates_empty_generic(tdl):
    tdl.eval_text("(defgeneric process)")
    assert "process" in tdl.generics


def test_defclass_multiple_inheritance_rejected(tdl):
    with pytest.raises(TdlSyntaxError):
        tdl.eval_text("(defclass bad (story property) ())")


def test_defclass_plain_symbol_slot(tdl):
    tdl.eval_text("(defclass blob (object) (payload))")
    assert tdl.registry.get("blob").own_attribute("payload").type_name == "any"


def test_shared_registry_integration():
    """A type defined in TDL is visible to Python code using the registry."""
    registry = standard_registry()
    interp = Interpreter(registry)
    interp.eval_text("(defclass recipe (object) ((steps :type (list string))))")
    obj = DataObject(registry, "recipe", steps=["etch"])
    assert obj.is_a("recipe")


def test_make_property_from_tdl(tdl):
    prop = tdl.eval_text(
        '(make-property \'keywords (list "fab") "story:1")')
    assert prop.is_a("property")
    assert prop.get("ref") == "story:1"


def test_render_object_from_tdl(tdl):
    text = tdl.eval_text(
        '(render-object (make-instance \'story :headline "X"))')
    assert "<story>" in text


def test_before_after_method_combination(tdl):
    """CLOS standard method combination: :before most-specific-first,
    primary, then :after least-specific-first; value comes from the
    primary."""
    tdl.eval_text("""
        (define trace (list))
        (defmethod step :before ((s story))
          (setq trace (append trace (list "before-story"))))
        (defmethod step :before ((s reuters-story))
          (setq trace (append trace (list "before-reuters"))))
        (defmethod step ((s story))
          (setq trace (append trace (list "primary")))
          "value")
        (defmethod step :after ((s story))
          (setq trace (append trace (list "after-story"))))
        (defmethod step :after ((s reuters-story))
          (setq trace (append trace (list "after-reuters"))))
    """)
    result = tdl.eval_text(
        '(step (make-instance \'reuters-story :headline "x")) trace')
    assert result == ["before-reuters", "before-story", "primary",
                      "after-story", "after-reuters"]
    assert tdl.eval_text(
        '(step (make-instance \'story :headline "x"))') == "value"


def test_before_without_primary_is_not_applicable(tdl):
    tdl.eval_text('(defmethod lonely :before ((s story)) t)')
    with pytest.raises(TdlDispatchError):
        tdl.eval_text('(lonely (make-instance \'story :headline "x"))')


def test_bad_qualifier_rejected(tdl):
    with pytest.raises(TdlSyntaxError):
        tdl.eval_text('(defmethod bad :around ((s story)) t)')


def test_qualified_method_redefinition_replaces(tdl):
    tdl.eval_text("""
        (define hits 0)
        (defmethod watch ((s story)) "v")
        (defmethod watch :before ((s story)) (setq hits (+ hits 1)))
        (defmethod watch :before ((s story)) (setq hits (+ hits 10)))
    """)
    tdl.eval_text('(watch (make-instance \'story :headline "x"))')
    assert tdl.eval_text("hits") == 10   # replaced, not accumulated
