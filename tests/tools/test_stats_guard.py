"""The stats-surface lint guard stays green and actually bites."""

import subprocess
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parents[2]
GUARD = ROOT / "tools" / "check_stats_surfaces.py"


def run_guard():
    return subprocess.run([sys.executable, str(GUARD)],
                          capture_output=True, text=True, cwd=ROOT)


def test_guard_passes_on_the_current_tree():
    proc = run_guard()
    assert proc.returncode == 0, proc.stdout + proc.stderr
    assert "none new" in proc.stdout
    # the frozen allowlist has no stale entries either
    assert "no longer exists" not in proc.stdout


def test_guard_flags_a_new_stats_surface(tmp_path):
    """Drop a new ``*_stats`` def into a scanned module and the guard
    must fail, naming it."""
    victim = ROOT / "src" / "repro" / "core" / "subjects.py"
    original = victim.read_text()
    try:
        victim.write_text(original + (
            "\n\ndef sneaky_stats():\n    return {}\n"))
        proc = run_guard()
        assert proc.returncode == 1
        assert "sneaky_stats" in proc.stdout
        assert "MetricsRegistry" in proc.stdout
    finally:
        victim.write_text(original)
    assert run_guard().returncode == 0
