"""The telemetry plane's two tested invariants.

1. **Neutrality** — publishing registry snapshots on ``_bus.stat.*``
   must never change data-plane behavior: a same-seed run with the
   publisher on is bit-identical (deliveries, traces, registry
   counters) to the same run with it off.
2. **No echo amplification** — stat traffic is unsequenced (seq 0),
   flow-controlled through a private bounded queue, and excluded from
   the counters it would otherwise perturb: an idle bus that only
   publishes telemetry reports zeros forever, one wire frame per
   snapshot.
"""

from repro.core import BusConfig, FlowConfig, InformationBus, QoS
from repro.sim import Simulator  # noqa: F401  (re-exported fixture surface)
from repro.sim.network import CostModel
from repro.sim.trace import Tracer

STAT = "_bus.stat.>"


def zero_cost():
    """Exact-zero send/recv cost and infinite wire: extra stat frames
    take literally no simulated time, so the data-plane event timeline
    cannot shift (the ``_compression_once`` precedent in run_perf.py)."""
    cost = CostModel.ideal()
    cost.bandwidth_bytes_per_sec = float("inf")
    cost.cpu_send_per_packet = 0.0
    cost.cpu_recv_per_packet = 0.0
    return cost


def _run_workload(stat_interval):
    """A fixed-seed workload with lanes, QoS, and a crash/recovery."""
    tracer = Tracer(enabled=True)
    config = BusConfig(stat_interval=stat_interval)
    bus = InformationBus(seed=7, cost=zero_cost(), config=config,
                         tracer=tracer)
    bus.add_hosts(3)
    pub = bus.client("node00", "pub")
    slow = bus.client("node01", "slow", service_time=0.004)
    fast = bus.client("node02", "fast")
    inbox = []
    slow.subscribe("feed.>", lambda s, o, i: inbox.append(("slow", s, i.seq)))
    fast.subscribe("feed.>", lambda s, o, i: inbox.append(("fast", s, i.seq)))
    fast.subscribe("gold.>", lambda s, o, i: inbox.append(("gold", s)),
                   durable=True)

    def fire(n):
        if n >= 40:
            return
        pub.publish(f"feed.f{n % 4}", {"n": n})
        if n == 10:
            pub.publish("gold.g", {"n": n}, qos=QoS.GUARANTEED)
        if n == 20:
            bus.crash_host("node02")
        if n == 25:
            bus.recover_host("node02")
        bus.sim.schedule(0.02, fire, n + 1)

    bus.sim.schedule(0.0, fire, 0)
    bus.run_for(3.0)
    return {
        "inbox": inbox,
        "trace": [(r.time, r.category, r.fields) for r in tracer.records],
        "registries": {a: d.metrics.snapshot()
                       for a, d in bus.daemons.items()},
        "flow": bus.flow_stats(),
        "client_counts": [pub.messages_published, slow.messages_received,
                          fast.messages_received],
    }


def test_stat_publishing_is_behavior_neutral():
    off = _run_workload(stat_interval=0.0)
    on = _run_workload(stat_interval=0.05)
    assert on["inbox"] == off["inbox"]
    assert on["trace"] == off["trace"]
    assert on["registries"] == off["registries"]
    assert on["flow"] == off["flow"]
    assert on["client_counts"] == off["client_counts"]
    # sanity: the on-run actually published snapshots
    assert off["inbox"]   # and the workload actually delivered something


def test_stat_traffic_never_echo_amplifies():
    """An idle bus publishing only telemetry: data-plane counters stay
    zero, snapshots stay bit-stable, one wire frame per snapshot."""
    config = BusConfig(stat_interval=0.05, advertise_subscriptions=False)
    bus = InformationBus(seed=3, config=config)
    bus.add_hosts(2)
    watcher = bus.client("node01", "watcher")
    snapshots = []
    watcher.subscribe(STAT, lambda s, o, i: snapshots.append((s, o)))
    plain = bus.client("node01", "plain")
    leaked = []
    plain.subscribe(">", lambda s, o, i: leaked.append(s))
    bus.run_for(2.0)

    assert len(snapshots) > 20          # telemetry flows...
    assert leaked == []                 # ...but never into ">" wildcards
    for daemon in bus.daemons.values():
        # seq-0 traffic is excluded from every data-plane counter
        assert daemon.published == 0
        assert daemon.delivered == 0
        # exactly one broadcast per snapshot: no stat-triggered stats
        assert (daemon._stat_socket.datagrams_sent
                == daemon._stat_publisher.snapshots_published)
    # a daemon with no local stat subscriber reports bit-identical
    # metrics forever: its own publishing perturbs nothing it counts
    node00 = [o["metrics"] for s, o in snapshots
              if s.endswith("node00.daemon")]
    assert len(node00) > 10
    assert all(m == node00[0] for m in node00[1:])


def test_stat_self_traffic_is_not_measured_but_is_flow_controlled():
    config = BusConfig(stat_interval=0.02, advertise_subscriptions=False)
    bus = InformationBus(seed=5, config=config)
    bus.add_hosts(2)
    browser = bus.client("node00", "browser")
    got = []
    browser.subscribe(STAT, lambda s, o, i: got.append(i))
    bus.run_for(1.0)
    assert len(got) > 20
    assert all(info.seq == 0 for info in got)        # unsequenced
    daemon = bus.daemons["node00"]
    assert daemon.delivered == 0                      # not counted
    assert browser._latency.count == 0                # not measured
    # but delivered through the ordinary bounded lane (flow-controlled)
    assert browser.delivery_stats()["offered"] >= len(got)


def test_stat_queue_sheds_oldest_under_backpressure():
    """A paced wire + a fast publisher: the private stat queue fills,
    drops stale snapshots oldest-first, and never exceeds its bound."""
    cost = CostModel.ideal()
    cost.cpu_send_per_packet = 0.01      # each broadcast costs 10 ms
    config = BusConfig(stat_interval=0.005, stat_queue=4,
                       advertise_subscriptions=False,
                       flow=FlowConfig(max_send_backlog=0.005))
    bus = InformationBus(seed=9, cost=cost, config=config)
    bus.add_hosts(1)
    bus.run_for(2.0)
    daemon = bus.daemons["node00"]
    stats = daemon._stat_queue.stats
    assert stats.dropped_oldest > 0
    assert stats.high_watermark <= config.stat_queue
    assert stats.depth <= config.stat_queue
    # the stat queue's own accounting is deliberately NOT a registry
    # instrument: the registry must never describe the telemetry plane
    assert not any("stat[" in name for name in daemon.metrics.names())
    assert daemon.published == 0


def test_stat_plane_survives_crash_and_recovery():
    config = BusConfig(stat_interval=0.05, advertise_subscriptions=False)
    bus = InformationBus(seed=11, config=config)
    bus.add_hosts(2)
    watcher = bus.client("node01", "watcher")
    seen = []
    watcher.subscribe(STAT, lambda s, o, i: seen.append((bus.sim.now, s)))
    bus.run_for(0.5)
    before = len(seen)
    assert before > 0
    bus.crash_host("node00")
    bus.run_for(0.5)
    bus.recover_host("node00")
    bus.run_for(0.5)
    from_node00 = [t for t, s in seen if s.endswith("node00.daemon")]
    # publishing resumed after the restart (fresh publisher, same registry)
    assert any(t > 1.0 for t in from_node00)
