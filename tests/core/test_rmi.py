"""Tests for remote method invocation (Section 3.3, Figure 2)."""

from repro.core import InformationBus, RmiClient, RmiServer
from repro.objects import (AttributeSpec, DataObject, OperationSpec,
                           ParamSpec, ServiceObject, TypeDescriptor,
                           standard_registry)
from repro.sim import CostModel


def quote_registry():
    reg = standard_registry()
    reg.register(TypeDescriptor(
        "quote", attributes=[AttributeSpec("symbol", "string"),
                             AttributeSpec("price", "float")]))
    reg.register(TypeDescriptor(
        "quote_service",
        operations=[
            OperationSpec("last", params=(ParamSpec("symbol", "string"),),
                          result_type="quote"),
            OperationSpec("symbols", result_type="list<string>"),
            OperationSpec("boom", result_type="int"),
        ]))
    return reg


def make_service(reg, prices=None):
    prices = prices or {"GM": 41.5, "IBM": 58.25}
    svc = ServiceObject(reg, "quote_service")
    svc.implement("last", lambda symbol: DataObject(
        reg, "quote", symbol=symbol, price=prices[symbol]))
    svc.implement("symbols", lambda: sorted(prices))
    svc.implement("boom", lambda: 1 // 0)
    return svc


def setup(n=3, seed=1, **server_kw):
    bus = InformationBus(seed=seed, cost=CostModel.ideal())
    bus.add_hosts(n)
    reg = quote_registry()
    server = RmiServer(bus.client("node01", "qsvc"), "svc.quotes",
                       make_service(reg), **server_kw)
    return bus, reg, server


def call_sync(bus, rmi, op, args, run=2.0):
    out = []
    rmi.call(op, args, lambda value, error: out.append((value, error)))
    bus.run_for(run)
    assert len(out) == 1, f"expected one completion, got {out}"
    return out[0]


def test_basic_call_returns_decoded_object():
    bus, reg, server = setup()
    rmi = RmiClient(bus.client("node00", "trader"), "svc.quotes")
    value, error = call_sync(bus, rmi, "last", {"symbol": "GM"})
    assert error is None
    assert value.type_name == "quote"       # client learned the type
    assert value.get("price") == 41.5
    assert server.calls_served == 1


def test_call_without_objects():
    bus, reg, server = setup()
    rmi = RmiClient(bus.client("node00", "trader"), "svc.quotes")
    value, error = call_sync(bus, rmi, "symbols", {})
    assert error is None
    assert value == ["GM", "IBM"]


def test_remote_exception_reported_not_raised():
    bus, reg, server = setup()
    rmi = RmiClient(bus.client("node00", "trader"), "svc.quotes")
    value, error = call_sync(bus, rmi, "boom", {})
    assert value is None
    assert "ZeroDivisionError" in error


def test_unknown_operation_reported():
    bus, reg, server = setup()
    rmi = RmiClient(bus.client("node00", "trader"), "svc.quotes")
    value, error = call_sync(bus, rmi, "ghost", {})
    assert value is None and "no operation" in error


def test_bad_arguments_reported():
    bus, reg, server = setup()
    rmi = RmiClient(bus.client("node00", "trader"), "svc.quotes")
    value, error = call_sync(bus, rmi, "last", {"nope": 1})
    assert value is None and error is not None


def test_no_servers_error():
    bus = InformationBus(seed=2, cost=CostModel.ideal())
    bus.add_hosts(2)
    rmi = RmiClient(bus.client("node00", "trader"), "svc.ghost",
                    discovery_window=0.2)
    value, error = call_sync(bus, rmi, "last", {"symbol": "GM"})
    assert error == "no servers discovered"


def test_connection_reused_across_calls():
    bus, reg, server = setup()
    rmi = RmiClient(bus.client("node00", "trader"), "svc.quotes")
    for _ in range(3):
        value, error = call_sync(bus, rmi, "symbols", {})
        assert error is None
    assert server.calls_served == 3


def test_concurrent_calls_multiplex():
    bus, reg, server = setup()
    rmi = RmiClient(bus.client("node00", "trader"), "svc.quotes")
    done = []
    rmi.call("last", {"symbol": "GM"}, lambda v, e: done.append(("gm", e)))
    rmi.call("last", {"symbol": "IBM"}, lambda v, e: done.append(("ibm", e)))
    rmi.call("symbols", {}, lambda v, e: done.append(("sym", e)))
    bus.run_for(2.0)
    assert sorted(k for k, e in done) == ["gm", "ibm", "sym"]
    assert all(e is None for _, e in done)


def test_duplicate_request_answered_from_cache():
    """At-most-once execution: a retried request never re-executes."""
    bus, reg, server = setup()
    counter = {"n": 0}

    def counting_symbols():
        counter["n"] += 1
        return ["X"]

    server.service.implement("symbols", counting_symbols)
    rmi = RmiClient(bus.client("node00", "trader"), "svc.quotes")
    value, error = call_sync(bus, rmi, "symbols", {})
    assert error is None
    # replay the same request id at the transport level: encode a raw
    # call frame just like the client would
    from repro.objects import encode
    first_cached = list(server._reply_cache)[0]
    conn = rmi._conn
    conn.send(encode({"kind": "call", "request_id": first_cached,
                      "op": "symbols", "args": b""}))
    bus.run_for(1.0)
    assert counter["n"] == 1   # served from the reply cache


def test_server_crash_fails_inflight_call():
    bus, reg, server = setup()
    rmi = RmiClient(bus.client("node00", "trader"), "svc.quotes",
                    call_timeout=3.0)
    value, error = call_sync(bus, rmi, "symbols", {})
    assert error is None
    bus.crash_host("node01")
    out = []
    rmi.call("symbols", {}, lambda v, e: out.append((v, e)))
    bus.run_for(5.0)
    assert len(out) == 1
    assert out[0][0] is None and out[0][1] is not None


def test_multiple_servers_first_policy_picks_one():
    bus = InformationBus(seed=3, cost=CostModel.ideal())
    bus.add_hosts(4)
    reg = quote_registry()
    servers = [RmiServer(bus.client(f"node0{i}", "qsvc"), "svc.quotes",
                         make_service(reg)) for i in (1, 2)]
    rmi = RmiClient(bus.client("node00", "trader"), "svc.quotes",
                    policy="first")
    value, error = call_sync(bus, rmi, "symbols", {})
    assert error is None
    assert sum(s.calls_served for s in servers) == 1


def test_all_policy_least_loaded_chooser():
    bus = InformationBus(seed=4, cost=CostModel.ideal())
    bus.add_hosts(4)
    reg = quote_registry()
    busy = RmiServer(bus.client("node01", "qsvc"), "svc.quotes",
                     make_service(reg), load=lambda: 100.0)
    idle = RmiServer(bus.client("node02", "qsvc"), "svc.quotes",
                     make_service(reg), load=lambda: 1.0)
    rmi = RmiClient(bus.client("node00", "trader"), "svc.quotes",
                    policy="all", discovery_window=0.3)
    value, error = call_sync(bus, rmi, "symbols", {})
    assert error is None
    assert idle.calls_served == 1
    assert busy.calls_served == 0


def test_exclusive_group_only_leader_answers():
    """'The servers can decide among themselves which one will respond.'"""
    bus = InformationBus(seed=5, cost=CostModel.ideal())
    bus.add_hosts(4)
    reg = quote_registry()
    primary = RmiServer(bus.client("node01", "qsvc"), "svc.quotes",
                        make_service(reg), rank=0, exclusive=True)
    backup = RmiServer(bus.client("node02", "qsvc"), "svc.quotes",
                       make_service(reg), rank=1, exclusive=True)
    bus.run_for(1.0)   # let presence converge
    rmi = RmiClient(bus.client("node00", "trader"), "svc.quotes",
                    policy="all", discovery_window=0.3)
    value, error = call_sync(bus, rmi, "symbols", {})
    assert error is None
    assert primary.calls_served == 1
    assert backup.calls_served == 0


def test_exclusive_group_fails_over_on_leader_crash():
    bus = InformationBus(seed=6, cost=CostModel.ideal())
    bus.add_hosts(4)
    reg = quote_registry()
    RmiServer(bus.client("node01", "qsvc"), "svc.quotes",
              make_service(reg), rank=0, exclusive=True)
    backup = RmiServer(bus.client("node02", "qsvc"), "svc.quotes",
                       make_service(reg), rank=1, exclusive=True)
    bus.run_for(1.0)
    bus.crash_host("node01")
    bus.run_for(2.0)   # presence expires; backup becomes leader
    rmi = RmiClient(bus.client("node00", "trader"), "svc.quotes")
    value, error = call_sync(bus, rmi, "symbols", {})
    assert error is None
    assert backup.calls_served == 1


def test_server_interface_is_self_describing():
    """The client can browse the discovered interface (app-builder food)."""
    bus, reg, server = setup()
    rmi = RmiClient(bus.client("node00", "trader"), "svc.quotes")
    call_sync(bus, rmi, "symbols", {})
    ops = {o["name"] for o in rmi.server_interface["operations"]}
    assert ops == {"last", "symbols", "boom"}


def test_rmi_protocol_phases():
    """Figure 2: discovery over pub/sub, then point-to-point streams."""
    bus, reg, server = setup()
    client = bus.client("node00", "trader")
    rmi = RmiClient(client, "svc.quotes")
    # before any call: no connection
    assert rmi._conn is None
    value, error = call_sync(bus, rmi, "symbols", {})
    assert error is None
    # after: a live point-to-point connection to the discovered endpoint
    assert rmi._conn is not None and rmi._conn.established
    assert rmi._conn.peer == server.endpoint
