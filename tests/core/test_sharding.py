"""Subject-space sharding: the shard map, the facade, and cross-plane
behaviour (discovery, guaranteed delivery, telemetry, routing).

At 4 shards the crc32 map places the first elements used below as
``news``->0, ``feed0``->1, ``alpha``->2, ``beta``->3 and ``svc``->1 —
every plane is exercised, and the discovery tests get a service subject
whose data plane differs from the pinned ``_discovery.*`` control plane.
"""

import zlib

import pytest

from repro.apps import BusBrowser
from repro.core import (BusConfig, BusDaemon, InformationBus, Inquiry,
                        QoS, Responder, Router, ShardMap, ShardedDaemon,
                        inquiry_subject)
from repro.core.daemon import (DAEMON_PORT, SHARD_PORT_STRIDE, STAT_PORT,
                               shard_data_port, shard_stat_port)
from repro.objects import (AttributeSpec, DataObject, TypeDescriptor,
                           standard_registry)
from repro.sim import CostModel, Simulator


def sharded_config(shards=4, **overrides):
    config = BusConfig(subject_shards=shards)
    for name, value in overrides.items():
        setattr(config, name, value)
    return config


def make_bus(shards=4, seed=1, hosts=2, **overrides):
    bus = InformationBus(seed=seed, cost=CostModel.ideal(),
                         config=sharded_config(shards, **overrides))
    bus.add_hosts(hosts)
    return bus


def record_registry():
    reg = standard_registry()
    reg.register(TypeDescriptor(
        "record", attributes=[AttributeSpec("n", "int")]))
    return reg


# ----------------------------------------------------------------------
# the shard map
# ----------------------------------------------------------------------

def test_shard_map_is_crc32_of_first_element():
    shard_map = ShardMap(4)
    for subject in ("news.x", "feed0.a.b", "alpha.t", "beta.q"):
        first = subject.split(".", 1)[0]
        expected = zlib.crc32(first.encode()) % 4
        assert shard_map.shard_of(subject) == expected
    # placement ignores everything after the first element
    assert shard_map.shard_of("news.a") == shard_map.shard_of("news.z.9")


def test_reserved_subjects_pin_to_shard_zero():
    shard_map = ShardMap(8)
    assert shard_map.shard_of("_bus.stat.node00.daemon") == 0
    assert shard_map.shard_of("_discovery.svc.quotes") == 0
    assert shard_map.shard_of("_sub.advert") == 0


def test_single_shard_map_is_trivial():
    shard_map = ShardMap(1)
    assert shard_map.shard_of("anything.at.all") == 0
    assert shard_map.shards_for_pattern(">") == (0,)
    with pytest.raises(ValueError):
        ShardMap(0)


def test_pattern_fan_out_rules():
    shard_map = ShardMap(4)
    # literal-first registers on exactly the owning plane
    assert shard_map.shards_for_pattern("news.>") == \
        (shard_map.shard_of("news.x"),)
    assert len(shard_map.shards_for_pattern("feed0.*")) == 1
    # wildcard-first could match any plane's subjects
    assert shard_map.shards_for_pattern(">") == (0, 1, 2, 3)
    assert shard_map.shards_for_pattern("*.prices") == (0, 1, 2, 3)
    # reserved patterns fan too: every plane emits its own control
    # traffic even though facade publishes pin to shard 0
    assert shard_map.shards_for_pattern("_bus.stat.>") == (0, 1, 2, 3)


# ----------------------------------------------------------------------
# the facade
# ----------------------------------------------------------------------

def test_default_config_builds_the_classic_daemon():
    bus = InformationBus(seed=1, cost=CostModel.ideal())
    bus.add_hosts(1)
    assert isinstance(bus.daemon("node00"), BusDaemon)


def test_sharded_bus_builds_a_facade_with_per_plane_ports():
    bus = make_bus(shards=4, hosts=1)
    daemon = bus.daemon("node00")
    assert isinstance(daemon, ShardedDaemon)
    rows = daemon.shard_stats()
    assert [row["shard"] for row in rows] == [0, 1, 2, 3]
    assert [row["port"] for row in rows] == \
        [DAEMON_PORT + SHARD_PORT_STRIDE * k for k in range(4)]
    assert [row["stat_port"] for row in rows] == \
        [STAT_PORT + SHARD_PORT_STRIDE * k for k in range(4)]
    assert shard_data_port(0) == DAEMON_PORT
    assert shard_stat_port(0) == STAT_PORT


def test_shard_sessions_share_host_identity():
    bus = make_bus(shards=3, hosts=1)
    daemon = bus.daemon("node00")
    bus.run_for(0.1)
    base = daemon.session
    assert base == daemon.shards[0].session
    assert "~" not in base
    for k in (1, 2):
        session = daemon.shards[k].session
        assert session == f"{base}~{k}"
        # NACK/ACK routing recovers the host address unchanged
        assert session.split("#", 1)[0] == "node00"


def test_publishes_route_to_owning_plane_and_are_counted():
    bus = make_bus(shards=4)
    received = {}
    sub = bus.client("node01", "sub")
    for first in ("news", "feed0", "alpha", "beta"):
        received[first] = []
        sub.subscribe(f"{first}.>",
                      lambda s, o, i, box=received[first]: box.append(s))
    pub = bus.client("node00", "pub")
    for first in ("news", "feed0", "alpha", "beta"):
        for n in range(3):
            pub.publish(f"{first}.m{n}", {"n": n})
    bus.settle(2.0)
    for first in ("news", "feed0", "alpha", "beta"):
        assert received[first] == [f"{first}.m{n}" for n in range(3)]
    daemon = bus.daemon("node00")
    shard_map = daemon.map
    snapshot = daemon.metrics.snapshot()
    for first in ("news", "feed0", "alpha", "beta"):
        shard = shard_map.shard_of(f"{first}.m0")
        name = f"daemon.node00.shard.routed[s{shard}]"
        assert snapshot[name]["value"] >= 3
    # each literal-first pattern landed on exactly one plane, so the
    # per-plane published counters only count their own subjects
    by_shard = {row["shard"]: row for row in daemon.shard_stats()}
    assert sum(row["published"] for row in by_shard.values()) == \
        daemon.published


def test_wildcard_first_subscription_fans_to_all_planes():
    bus = make_bus(shards=4)
    everything = []
    bus.client("node01", "monitor").subscribe(
        ">", lambda s, o, i: everything.append(s))
    pub = bus.client("node00", "pub")
    for first in ("news", "feed0", "alpha", "beta"):
        pub.publish(f"{first}.x", {"n": 1})
    bus.settle(2.0)
    assert sorted(everything) == ["alpha.x", "beta.x", "feed0.x", "news.x"]
    daemon = bus.daemon("node01")
    snapshot = daemon.metrics.snapshot()
    assert snapshot["daemon.node01.shard.fanout_subscriptions"]["value"] \
        >= 1
    # the fanned pattern occupies a slot on every plane
    assert daemon.subscription_count() >= 4


def test_facade_counters_sum_across_planes():
    bus = make_bus(shards=4)
    bus.client("node01", "sub").subscribe(">", lambda *a: None)
    pub = bus.client("node00", "pub")
    for first in ("news", "feed0", "alpha", "beta"):
        pub.publish(f"{first}.x", {"n": 1})
    bus.settle(2.0)
    daemon = bus.daemon("node00")
    assert daemon.published >= 4
    assert bus.daemon("node01").delivered >= 4
    # flow_stats keeps the per-client deliver[...] keys the client's
    # delivery_stats view depends on
    flow = bus.daemon("node01").flow_stats()
    assert any(key.startswith("deliver[") for key in flow)


# ----------------------------------------------------------------------
# discovery across shards (service and inquiry subjects on different
# planes: ``_discovery.*`` pins to shard 0, ``svc.*`` hashes to plane 1)
# ----------------------------------------------------------------------

def test_discovery_spans_control_and_data_planes():
    bus = make_bus(shards=4, hosts=3)
    shard_map = bus.daemon("node00").map
    service = "svc.quotes"
    assert shard_map.shard_of(service) != 0
    assert shard_map.shard_of(inquiry_subject(service)) == 0
    servers = {i: bus.client(f"node0{i}", f"server{i}") for i in (1, 2)}
    for i, server in servers.items():
        Responder(server, service, info={"member": i})
    results = []
    caller = bus.client("node00", "client")
    Inquiry(caller, service, results.append, window=0.3)
    bus.run_for(1.0)
    assert len(results) == 1
    assert {d.responder for d in results[0]} == \
        {"node01.server1", "node02.server2"}
    # ...and the discovered service is reachable on its own data plane
    answered = []
    servers[1].subscribe(
        f"{service}.req", lambda s, o, i: answered.append(o["n"]))
    caller.publish(f"{service}.req", {"n": 7})
    bus.settle(1.0)
    assert answered == [7]


def test_discovery_works_whichever_plane_the_service_hashes_to():
    bus = make_bus(shards=2, hosts=2)
    shard_map = bus.daemon("node00").map
    # one service per plane (svc -> 1, news -> 0 at two shards)
    services = {"svc.quotes": None, "news.wire": None}
    assert {shard_map.shard_of(s) for s in services} == {0, 1}
    for subject in services:
        Responder(bus.client("node01", f"srv.{subject}"), subject)
    for subject in services:
        box = []
        services[subject] = box
        Inquiry(bus.client("node00", f"c.{subject}"), subject, box.append,
                window=0.3)
    bus.run_for(1.0)
    for subject, box in services.items():
        assert len(box) == 1 and len(box[0]) == 1, subject


# ----------------------------------------------------------------------
# guaranteed delivery per plane
# ----------------------------------------------------------------------

def test_guaranteed_ledgers_are_namespaced_per_plane():
    bus = make_bus(shards=4, hosts=2)
    reg = record_registry()
    pub = bus.client("node00", "feed", registry=reg)
    received = []
    bus.client("node01", "db").subscribe(
        ">", lambda s, o, i: received.append((s, o.get("n"))), durable=True)
    # gd -> plane 2 and news -> plane 0 at four shards: two ledgers
    pub.publish("gd.data", DataObject(reg, "record", n=1),
                qos=QoS.GUARANTEED)
    pub.publish("news.data", DataObject(reg, "record", n=2),
                qos=QoS.GUARANTEED)
    stable = bus.host("node00").stable
    shard_map = bus.daemon("node00").map
    assert shard_map.shard_of("gd.data") == 2
    assert shard_map.shard_of("news.data") == 0
    # shard 0 uses the classic key, other planes suffix their namespace
    assert len(stable.get("gd.ledger")) == 1
    assert len(stable.get("gd.ledgers2")) == 1
    assert stable.get("gd.ledgers2")[0]["ledger_id"].startswith(
        "node00/s2.")
    bus.settle(3.0)
    assert sorted(received) == [("gd.data", 1), ("news.data", 2)]
    assert bus.daemon("node00").guaranteed_pending() == []


def test_guaranteed_survives_publisher_crash_on_nonzero_plane():
    bus = make_bus(shards=4, hosts=3, seed=3)
    reg = record_registry()
    pub = bus.client("node00", "feed", registry=reg)
    received = []
    bus.client("node01", "db").subscribe(
        "gd.>", lambda s, o, i: received.append(o.get("n")), durable=True)
    bus.partition({"node00"}, {"node01", "node02"})
    pub.publish("gd.data", DataObject(reg, "record", n=1),
                qos=QoS.GUARANTEED)
    bus.settle(1.0)
    bus.crash_host("node00")
    bus.heal()
    bus.run_for(1.0)
    assert received == []
    bus.recover_host("node00")   # plane 2's ledger reloads from stable
    bus.settle(5.0)
    assert received == [1]
    assert bus.daemon("node00").guaranteed_pending() == []


def test_recovery_reattaches_subscriptions_on_every_plane():
    bus = make_bus(shards=4, hosts=2, seed=5)
    received = []
    bus.client("node01", "monitor").subscribe(
        ">", lambda s, o, i: received.append(s))
    pub = bus.client("node00", "pub")
    bus.run_for(0.2)
    bus.crash_host("node01")
    bus.run_for(0.5)
    bus.recover_host("node01")
    bus.run_for(0.5)
    for first in ("news", "feed0", "alpha", "beta"):
        pub.publish(f"{first}.x", {"n": 1})
    bus.settle(2.0)
    assert sorted(received) == ["alpha.x", "beta.x", "feed0.x", "news.x"]


# ----------------------------------------------------------------------
# telemetry across planes
# ----------------------------------------------------------------------

def test_browser_labels_shard_planes():
    bus = make_bus(shards=2, hosts=2, seed=2,
                   stat_interval=0.1, advert_interval=0.5)
    bus.client("node01", "sub").subscribe("feed0.>", lambda *a: None)
    pub = bus.client("node00", "pub")
    for n in range(10):
        pub.publish("feed0.x", {"n": n})      # plane 1 traffic
    browser = BusBrowser(bus.client("node01", "browser"))
    bus.run_for(1.0)
    sources = {t.source: t for t in browser.telemetry()}
    # every plane is its own snapshot source, shard 0 included
    assert set(sources) == {"node00.daemon.s0", "node00.daemon.s1",
                            "node01.daemon.s0", "node01.daemon.s1"}
    assert sources["node00.daemon.s0"].shard == 0
    assert sources["node00.daemon.s1"].shard == 1
    # the traffic ran on plane 1; plane 0 never saw it
    plane1 = sources["node00.daemon.s1"].metrics
    assert plane1["daemon.node00.published"]["value"] >= 10
    assert plane1["daemon.node00.shard.id"]["value"] == 1
    assert plane1["daemon.node00.shard.count"]["value"] == 2
    # bus_top sums planes without double counting
    top = browser.bus_top()
    assert top["hosts"] == 4   # one source per plane
    assert top["published"] >= 10
    assert "shard=1" in browser.report()


# ----------------------------------------------------------------------
# routers bridge sharded buses
# ----------------------------------------------------------------------

def test_router_bridges_two_sharded_buses():
    sim = Simulator(seed=6)
    config = sharded_config(4, advert_interval=0.5)
    east = InformationBus(cost=CostModel.ideal(), name="east", sim=sim,
                          config=config)
    west = InformationBus(cost=CostModel.ideal(), name="west", sim=sim,
                          config=sharded_config(2, advert_interval=0.5))
    east.add_hosts(2, prefix="e")
    west.add_hosts(2, prefix="w")
    router = Router()
    router.add_leg(east)
    router.add_leg(west)
    received = []
    west.client("w00", "sub").subscribe(
        "feed0.>", lambda s, o, i: received.append(o["n"]))
    sim.run_until(2.0)
    pub = east.client("e00", "pub")
    for n in range(5):
        pub.publish("feed0.x", {"n": n})
    sim.run_until(5.0)
    assert received == list(range(5))
    # the leg forwarded across planes with its usual counters
    assert any(s["forwarded"] >= 5 for s in router.leg_stats().values())
