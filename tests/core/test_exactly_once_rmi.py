"""Tests for the exactly-once RMI layer and durable reply caching.

Section 3.3: "Customer-specific requirements such as exactly-once
semantics, which guarantees that the method will be executed exactly
once, even in the presence of failures, can be built on a layer above
standard RMI."
"""

from repro.core import ExactlyOnceRmiClient, InformationBus, RmiServer
from repro.objects import (OperationSpec, ParamSpec, ServiceObject,
                           TypeDescriptor, standard_registry)
from repro.sim import CostModel


def counting_service(reg):
    reg.register(TypeDescriptor(
        "counter_service",
        operations=[OperationSpec("bump", params=(ParamSpec("by", "int"),),
                                  result_type="int")]))
    state = {"n": 0, "executions": 0}
    svc = ServiceObject(reg, "counter_service")

    def bump(by):
        state["executions"] += 1
        state["n"] += by
        return state["n"]

    svc.implement("bump", bump)
    return svc, state


def setup(seed=1, **server_kw):
    bus = InformationBus(seed=seed, cost=CostModel.ideal())
    bus.add_hosts(3)
    reg = standard_registry()
    svc, state = counting_service(reg)
    server = RmiServer(bus.client("node01", "svc"), "svc.counter", svc,
                       **server_kw)
    return bus, server, state


def test_normal_call_executes_once():
    bus, server, state = setup()
    eo = ExactlyOnceRmiClient(bus.client("node00", "app"), "svc.counter")
    out = []
    eo.call("bump", {"by": 5}, lambda v, e: out.append((v, e)))
    bus.run_for(2.0)
    assert out == [(5, None)]
    assert state["executions"] == 1
    assert eo.retries == 0


def test_retries_until_server_appears():
    """The server comes up late; the layer keeps retrying discovery."""
    bus = InformationBus(seed=2, cost=CostModel.ideal())
    bus.add_hosts(3)
    reg = standard_registry()
    svc, state = counting_service(reg)
    eo = ExactlyOnceRmiClient(bus.client("node00", "app"), "svc.counter",
                              retry_delay=0.3,
                              discovery_window=0.1)
    out = []
    eo.call("bump", {"by": 1}, lambda v, e: out.append((v, e)))
    bus.sim.schedule(1.0, lambda: RmiServer(
        bus.client("node01", "svc"), "svc.counter", svc))
    bus.run_for(6.0)
    assert out == [(1, None)]
    assert state["executions"] == 1
    assert eo.retries >= 1


def test_retry_through_server_crash_does_not_reexecute():
    """The server executes, crashes before the client ever consumes the
    reply stream, recovers, and the retried request id is answered from
    the durable reply cache — one execution total."""
    bus, server, state = setup(seed=3, durable_replies=True)
    eo = ExactlyOnceRmiClient(bus.client("node00", "app"), "svc.counter",
                              retry_delay=0.4, call_timeout=1.0)
    out = []
    eo.call("bump", {"by": 7}, lambda v, e: out.append((v, e)))
    bus.run_for(2.0)
    assert out == [(7, None)]
    # crash the server and retry the SAME request id at the raw layer
    bus.crash_host("node01")
    bus.run_for(0.5)
    bus.recover_host("node01")
    bus.run_for(1.0)
    raw = eo.rmi
    if raw._conn is not None:       # drop the stale pre-crash connection
        raw._conn.close()
        raw._conn = None
    replayed = []
    first_request_id = list(server._reply_cache)[0]
    raw.call("bump", {"by": 7}, lambda v, e: replayed.append((v, e)),
             request_id=first_request_id)
    bus.run_for(4.0)
    assert replayed == [(7, None)]     # answered from the durable cache
    assert state["executions"] == 1    # never re-executed


def test_exactly_once_across_partition():
    """The client is partitioned from the server mid-conversation; the
    call times out and retries after healing without double execution."""
    bus, server, state = setup(seed=4, durable_replies=True)
    eo = ExactlyOnceRmiClient(bus.client("node00", "app"), "svc.counter",
                              retry_delay=0.5, call_timeout=1.0,
                              discovery_window=0.2)
    # warm up the connection so the partition hits an established path
    warm = []
    eo.call("bump", {"by": 1}, lambda v, e: warm.append(v))
    bus.run_for(2.0)
    assert warm == [1]
    bus.partition({"node00"}, {"node01", "node02"})
    out = []
    eo.call("bump", {"by": 10}, lambda v, e: out.append((v, e)))
    bus.run_for(2.5)
    assert out == []           # still retrying across the partition
    bus.heal()
    bus.run_for(6.0)
    assert len(out) == 1
    value, error = out[0]
    assert error is None
    assert value == 11
    # executed exactly once no matter how many transmissions happened
    assert state["executions"] == 2    # warm-up + the partitioned call


def test_gives_up_after_attempts_exhausted():
    bus = InformationBus(seed=5, cost=CostModel.ideal())
    bus.add_hosts(2)
    eo = ExactlyOnceRmiClient(bus.client("node00", "app"), "svc.ghost",
                              attempts=3, retry_delay=0.2,
                              discovery_window=0.1)
    out = []
    eo.call("bump", {"by": 1}, lambda v, e: out.append((v, e)))
    bus.run_for(5.0)
    assert len(out) == 1
    assert out[0][0] is None
    assert "no servers" in out[0][1]
    assert eo.retries == 2      # attempts - 1


def test_remote_exception_is_not_retried():
    bus, server, state = setup(seed=6)
    server.service.implement("bump", lambda by: 1 // 0)
    eo = ExactlyOnceRmiClient(bus.client("node00", "app"), "svc.counter")
    out = []
    eo.call("bump", {"by": 1}, lambda v, e: out.append((v, e)))
    bus.run_for(3.0)
    assert len(out) == 1
    assert "ZeroDivisionError" in out[0][1]
    assert eo.retries == 0      # application errors are final


def test_client_host_recovery_rebinds():
    """The CLIENT's own host crashes and recovers mid-conversation; the
    retry layer keeps working because the stream port rebinds."""
    bus, server, state = setup(seed=7, durable_replies=True)
    eo = ExactlyOnceRmiClient(bus.client("node00", "app"), "svc.counter",
                              retry_delay=0.5, call_timeout=1.0)
    warm = []
    eo.call("bump", {"by": 1}, lambda v, e: warm.append(v))
    bus.run_for(2.0)
    assert warm == [1]
    bus.crash_host("node00")
    bus.run_for(0.5)
    bus.recover_host("node00")
    bus.run_for(1.0)
    out = []
    eo.call("bump", {"by": 2}, lambda v, e: out.append((v, e)))
    bus.run_for(6.0)
    assert out == [(3, None)]
    assert state["executions"] == 2
