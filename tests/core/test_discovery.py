"""Tests for the "Who's out there?" discovery protocol (Section 3.2)."""

from repro.core import InformationBus, Inquiry, Responder, inquiry_subject
from repro.sim import CostModel


def make_bus(n=4):
    bus = InformationBus(seed=1, cost=CostModel.ideal())
    bus.add_hosts(n)
    return bus


def test_inquiry_finds_all_responders():
    bus = make_bus()
    for i in (1, 2):
        Responder(bus.client(f"node0{i}", f"server{i}"),
                  "svc.quotes", info={"shard": i})
    results = []
    Inquiry(bus.client("node00", "client"), "svc.quotes", results.append,
            window=0.3)
    bus.run_for(1.0)
    assert len(results) == 1
    discovered = results[0]
    assert {d.responder for d in discovered} == \
        {"node01.server1", "node02.server2"}
    assert {d.info["shard"] for d in discovered} == {1, 2}
    assert all(d.service_subject == "svc.quotes" for d in discovered)


def test_inquiry_with_no_responders_completes_empty():
    bus = make_bus()
    results = []
    Inquiry(bus.client("node00", "client"), "svc.ghost", results.append,
            window=0.2)
    bus.run_for(1.0)
    assert results == [[]]


def test_enough_completes_early():
    bus = make_bus()
    for i in (1, 2, 3):
        Responder(bus.client(f"node0{i}", f"server{i}"), "svc.q")
    results = []
    Inquiry(bus.client("node00", "client"), "svc.q", results.append,
            window=10.0, enough=1)
    bus.run_for(1.0)   # far less than the window
    assert len(results) == 1
    assert len(results[0]) == 1


def test_responder_info_callable_reflects_current_state():
    bus = make_bus()
    state = {"load": 0}
    Responder(bus.client("node01", "server"), "svc.q",
              info=lambda: {"load": state["load"]})
    first, second = [], []
    Inquiry(bus.client("node00", "c1"), "svc.q", first.append, window=0.2)
    bus.run_for(1.0)
    state["load"] = 9
    Inquiry(bus.client("node00", "c2"), "svc.q", second.append, window=0.2)
    bus.run_for(1.0)
    assert first[0][0].info == {"load": 0}
    assert second[0][0].info == {"load": 9}


def test_concurrent_inquiries_do_not_cross_talk():
    bus = make_bus()
    Responder(bus.client("node01", "server"), "svc.q")
    a_results, b_results = [], []
    Inquiry(bus.client("node00", "a"), "svc.q", a_results.append, window=0.3)
    Inquiry(bus.client("node02", "b"), "svc.q", b_results.append, window=0.3)
    bus.run_for(1.0)
    assert len(a_results[0]) == 1
    assert len(b_results[0]) == 1


def test_duplicate_answers_collapsed():
    bus = make_bus()
    client = bus.client("node01", "server")
    Responder(client, "svc.q")
    Responder(client, "svc.q")   # same client answering twice
    results = []
    Inquiry(bus.client("node00", "c"), "svc.q", results.append, window=0.3)
    bus.run_for(1.0)
    assert len(results[0]) == 1


def test_stopped_responder_is_silent():
    bus = make_bus()
    responder = Responder(bus.client("node01", "server"), "svc.q")
    responder.stop()
    results = []
    Inquiry(bus.client("node00", "c"), "svc.q", results.append, window=0.2)
    bus.run_for(1.0)
    assert results == [[]]


def test_should_answer_gate():
    bus = make_bus()
    gate = {"open": False}
    Responder(bus.client("node01", "server"), "svc.q",
              should_answer=lambda: gate["open"])
    results = []
    Inquiry(bus.client("node00", "c1"), "svc.q", results.append, window=0.2)
    bus.run_for(1.0)
    assert results == [[]]
    gate["open"] = True
    Inquiry(bus.client("node00", "c2"), "svc.q", results.append, window=0.2)
    bus.run_for(1.0)
    assert len(results[1]) == 1


def test_cancel_suppresses_callback():
    bus = make_bus()
    Responder(bus.client("node01", "server"), "svc.q")
    results = []
    inquiry = Inquiry(bus.client("node00", "c"), "svc.q", results.append,
                      window=0.5)
    bus.run_for(0.01)
    inquiry.cancel()
    bus.run_for(1.0)
    assert results == []


def test_discovery_traffic_is_admin_scoped():
    """Inquiry/answer chatter must not leak into '>' subscribers."""
    bus = make_bus()
    leaked = []
    bus.client("node03", "snoop").subscribe(">", lambda s, o, i:
                                            leaked.append(s))
    Responder(bus.client("node01", "server"), "svc.q")
    Inquiry(bus.client("node00", "c"), "svc.q", lambda r: None, window=0.2)
    bus.run_for(1.0)
    assert leaked == []
    assert inquiry_subject("svc.q") == "_discovery.svc.q"
