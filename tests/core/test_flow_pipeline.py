"""End-to-end flow control: overload, slow-consumer isolation,
observable sheds, and same-seed determinism.

The overload scenario drives a publisher at roughly twice the host's
send capacity for five simulated seconds and checks the acceptance
criteria of the flow-control layer: every bounded queue stays at or
under its cap, only reliable-QoS traffic is shed (with exact per-queue
counts), and every guaranteed message is delivered at least once after
the pressure subsides.
"""

from repro.core import (BusConfig, FlowConfig, InformationBus,
                        POLICY_DROP_NEWEST, POLICY_DROP_OLDEST, QoS,
                        ReliableConfig, ReliableReceiver)
from repro.objects import encode
from repro.sim import Simulator
from repro.sim.network import CostModel
from repro.sim.trace import Tracer

#: ~2.7 ms host CPU per ~900-byte send => ~370 msg/s capacity; publishing
#: every 1.45 ms offers ~2x that.
PAYLOAD = encode(b"\x00" * 900)
PUBLISH_INTERVAL = 0.00145
OVERLOAD_SECONDS = 5.0
GUARANTEED_COUNT = 5


def _overload_config():
    return BusConfig(flow=FlowConfig(
        publish_queue=64, publish_policy=POLICY_DROP_NEWEST,
        max_send_backlog=0.01))


def run_overload(seed, trace=False):
    """One overload run; returns everything a determinism check needs."""
    tracer = Tracer(enabled=trace)
    bus = InformationBus(seed=seed, cost=CostModel(loss_probability=0.0),
                         config=_overload_config(), tracer=tracer)
    bus.add_hosts(2)
    publisher = bus.client("node00", "pub")
    subscriber = bus.client("node01", "sub")
    got = []
    subscriber.subscribe("load.data",
                         lambda _s, _o, info: got.append(info.seq))
    gold = []
    subscriber.subscribe("gold.>",
                         lambda s, _o, _i: gold.append(s), durable=True)

    receipts = {"accepted": 0, "deferred": 0, "dropped": 0}
    gold_receipts = []

    def fire():
        receipt = publisher.publish_bytes("load.data", PAYLOAD)
        receipts[receipt.admission.value] += 1
        if bus.sim.now + PUBLISH_INTERVAL < OVERLOAD_SECONDS:
            bus.sim.schedule(PUBLISH_INTERVAL, fire, name="load")

    def fire_gold(i):
        gold_receipts.append(
            publisher.publish(f"gold.g{i}", {"i": i}, qos=QoS.GUARANTEED))

    bus.sim.schedule(0.0, fire, name="load")
    for i in range(GUARANTEED_COUNT):
        # mid-overload: the outbound queue is full, so these defer to
        # the stable ledger and retransmit until admitted
        bus.sim.schedule(1.0 + i * 0.2, fire_gold, i, name="gold")
    bus.run_for(OVERLOAD_SECONDS)
    bus.settle(5.0)
    return {
        "got": got,
        "gold": sorted(gold),
        "receipts": receipts,
        "gold_admissions": [r.admission.value for r in gold_receipts],
        "flow": bus.flow_stats(),
        "pending": len(bus.daemon("node00").guaranteed_pending()),
        "trace_flow": tracer.category_counts("flow."),
    }


def test_overload_bounded_sheds_reliable_only_and_keeps_guaranteed():
    result = run_overload(seed=7)
    receipts = result["receipts"]

    # the workload genuinely overloaded the pipeline
    offered = sum(receipts.values())
    assert offered > 3000
    assert receipts["dropped"] > 1000

    # every bounded queue stayed at or under its configured cap
    for daemon_stats in result["flow"].values():
        for snap in daemon_stats.values():
            assert snap["high_watermark"] <= snap["capacity"], snap["name"]
            assert snap["depth"] == 0   # fully drained after settling

    # exact per-queue accounting: the publisher's outbound queue shed
    # exactly the publishes whose receipts said "dropped"
    outbound = result["flow"]["node00"]["outbound"]
    assert outbound["dropped"] == receipts["dropped"]
    assert outbound["policy"] == POLICY_DROP_NEWEST

    # every accepted reliable message was delivered (loss disabled),
    # in order, with no invented extras
    assert len(result["got"]) == receipts["accepted"]
    assert result["got"] == sorted(result["got"])

    # guaranteed QoS was never shed: deferred mid-overload, delivered at
    # least once after the pressure subsided, and fully acked
    assert "dropped" not in result["gold_admissions"]
    assert "deferred" in result["gold_admissions"]   # pressure was real
    assert result["gold"] == [f"gold.g{i}" for i in range(GUARANTEED_COUNT)]
    assert result["pending"] == 0


def test_overload_same_seed_is_bit_identical_back_to_back():
    # two consecutive in-process runs (exercises the per-segment
    # frame-id fix: a leaked global counter would diverge run 2)
    first = run_overload(seed=11)
    second = run_overload(seed=11)
    assert first == second


def test_tracing_does_not_change_behavior():
    untraced = run_overload(seed=13, trace=False)
    traced = run_overload(seed=13, trace=True)
    assert traced["trace_flow"].get("flow.drop", 0) > 0  # sheds visible
    for key in ("got", "gold", "receipts", "gold_admissions", "flow",
                "pending"):
        assert traced[key] == untraced[key], key


def test_slow_consumer_sheds_without_stalling_sibling():
    bus = InformationBus(
        seed=3, cost=CostModel(loss_probability=0.0),
        config=BusConfig(flow=FlowConfig(delivery_queue=32,
                                         delivery_policy=POLICY_DROP_OLDEST)))
    bus.add_hosts(2)
    publisher = bus.client("node00", "pub")
    fast_latency = []
    slow_count = [0]
    fast = bus.client("node01", "fast")
    # 1/10th of the 200 msg/s offered rate
    slow = bus.client("node01", "slow", service_time=0.05)
    fast.subscribe("feed.data", lambda _s, _o, info: fast_latency.append(
        info.deliver_time - info.publish_time))
    slow.subscribe("feed.data",
                   lambda _s, _o, _i: slow_count.__setitem__(
                       0, slow_count[0] + 1))

    total = [0]

    payload = encode(b"\x00" * 200)

    def fire():
        publisher.publish_bytes("feed.data", payload)
        total[0] += 1
        if bus.sim.now + 0.005 < 5.0:
            bus.sim.schedule(0.005, fire, name="feed")

    bus.sim.schedule(0.0, fire, name="feed")
    bus.run_for(5.0)
    bus.settle(2.0)

    # the fast sibling saw everything, promptly
    assert len(fast_latency) == total[0]
    assert max(fast_latency) < 0.05

    # the slow app's lane stayed bounded and shed per its policy
    slow_stats = slow.delivery_stats()
    assert slow_stats["high_watermark"] <= 32
    assert slow_stats["dropped_oldest"] > 0
    assert slow_count[0] < total[0]
    # and it still consumed at its own (1/10th) pace
    assert slow_count[0] > total[0] // 20

    # the fast sibling's lane never even queued
    fast_stats = fast.delivery_stats()
    assert fast_stats["dropped"] == 0


def test_reorder_overflow_is_counted_and_traced():
    # satellite: the silent reorder-buffer drop is now counted + traced
    sim = Simulator(seed=1)
    tracer = Tracer(enabled=True)
    config = ReliableConfig(receive_buffer=2,
                            overflow_policy=POLICY_DROP_NEWEST)
    delivered = []
    receiver = ReliableReceiver(sim, config,
                                lambda env, _r: delivered.append(env.seq),
                                lambda *_args: None, tracer=tracer)

    from repro.core import Envelope
    def env(seq):
        return Envelope(subject="a.b", sender="x", session="s#0", seq=seq,
                        payload=b"p", qos=QoS.RELIABLE)

    receiver.handle_envelope(env(1), session_start=0.0)
    # out-of-order arrivals: 3 and 4 fill the 2-slot buffer...
    receiver.handle_envelope(env(3), session_start=0.0)
    receiver.handle_envelope(env(4), session_start=0.0)
    # ...5 and 6 must shed (drop-newest keeps the gap-fillers)
    receiver.handle_envelope(env(5), session_start=0.0)
    receiver.handle_envelope(env(6), session_start=0.0)
    stats = receiver.stats("s#0")
    assert stats.overflow_dropped == 2
    drops = tracer.select("flow.drop", queue="reliable.reorder")
    assert [d["seq"] for d in drops] == [5, 6]
    # the buffered gap-fillers still deliver once 2 arrives
    receiver.handle_envelope(env(2), session_start=0.0)
    assert delivered == [1, 2, 3, 4]


def test_reorder_overflow_drop_oldest_prefers_fresh_data():
    sim = Simulator(seed=1)
    config = ReliableConfig(receive_buffer=2,
                            overflow_policy=POLICY_DROP_OLDEST)
    receiver = ReliableReceiver(sim, config, lambda *_: None,
                                lambda *_: None)
    from repro.core import Envelope
    def env(seq):
        return Envelope(subject="a.b", sender="x", session="s#0", seq=seq,
                        payload=b"p", qos=QoS.RELIABLE)

    receiver.handle_envelope(env(1), session_start=0.0)
    receiver.handle_envelope(env(3), session_start=0.0)
    receiver.handle_envelope(env(4), session_start=0.0)
    receiver.handle_envelope(env(6), session_start=0.0)  # evicts seq 3
    stats = receiver.stats("s#0")
    assert stats.overflow_dropped == 1
