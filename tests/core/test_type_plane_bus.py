"""End-to-end tests for the session type plane on the simulated bus.

The invariants mirror the string-table ones (PR 6), one layer up:

* receivers with bare registries learn types from typedefs riding the
  wire frames, once per session — not from per-payload metadata;
* a receiver that missed the defining frame hits a typed, repairable
  decode failure (``UnresolvedTypeId`` → drop + NACK arming, never a
  crash), and the RETRANS repair re-defines everything it references;
* guaranteed traffic stays self-contained (ledger entries outlive the
  session the type ids are scoped to);
* the ``type_plane`` knob off reproduces the inline-metadata baseline.
"""

from repro.core import BusConfig, InformationBus, QoS
from repro.objects import (AttributeSpec, DataObject, TypeDescriptor,
                           decode, standard_registry)
from repro.sim import CostModel


def story_registry():
    reg = standard_registry()
    reg.register(TypeDescriptor(
        "source", attributes=[AttributeSpec("name", "string")]))
    reg.register(TypeDescriptor(
        "story", attributes=[AttributeSpec("n", "int"),
                             AttributeSpec("source", "source",
                                           required=False)]))
    return reg


def make_bus(seed=1, hosts=3, cost=None, **cfg):
    bus = InformationBus(seed=seed, cost=cost or CostModel.ideal(),
                         config=BusConfig(**cfg))
    bus.add_hosts(hosts)
    return bus


def make_story(reg, n):
    return DataObject(reg, "story", n=n,
                      source=DataObject(reg, "source", name="Reuters"))


def test_bare_receiver_learns_types_from_the_wire():
    bus = make_bus()
    reg = story_registry()
    pub = bus.client("node00", "feed", registry=reg)
    got = []
    sub = bus.client("node01", "mon")      # fresh standard registry
    sub.subscribe("news.>", lambda s, o, i: got.append(o))
    for n in range(10):
        pub.publish("news.x", make_story(reg, n))
    bus.settle()
    assert [o.get("n") for o in got] == list(range(10))
    assert got[0].get("source").get("name") == "Reuters"
    assert sub.registry.has("story") and sub.registry.has("source")
    assert sub.decode_errors == 0
    # the definitions travelled once, not in every payload
    recv = bus.daemons["node01"].wire_stats()
    assert recv["typedef_peer_sessions"] == 1
    assert recv["typedef_peer_types"] == 3          # root, source, story
    assert bus.daemons["node00"].wire_stats()["typedef_table_types"] == 3


def test_steady_state_payloads_shrink():
    """After the defining frame, typed payloads beat inline ones by far
    more than the 40%% acceptance floor."""
    reg = story_registry()
    sizes = {}
    for plane in (True, False):
        bus = make_bus(type_plane=plane)
        pub = bus.client("node00", "feed", registry=story_registry())
        seen = []
        bus.client("node01", "mon").subscribe(
            "news.>", lambda s, o, i: seen.append(i.size))
        for n in range(20):
            pub.publish("news.x", make_story(reg, n))
        bus.settle()
        assert len(seen) == 20
        sizes[plane] = seen[-1]            # steady-state payload bytes
    assert sizes[True] < sizes[False] * 0.6


def test_lost_defining_frame_is_repaired():
    """The first frame (carrying the typedefs) vanishes; the repair
    re-defines everything, so the receiver decodes all messages."""
    cost = CostModel.ideal()
    bus = make_bus(seed=3, hosts=2, cost=cost)
    reg = story_registry()
    pub = bus.client("node00", "feed", registry=reg)
    got = []
    sub = bus.client("node01", "mon")
    sub.subscribe("news.>", lambda s, o, i: got.append(o.get("n")))
    cost.loss_probability = 1.0            # the defining frame vanishes
    pub.publish("news.x", make_story(reg, 0))
    bus.run_for(0.01)
    cost.loss_probability = 0.0
    for n in range(1, 6):                  # later frames only reference
        pub.publish("news.x", make_story(reg, n))
    bus.run_for(5.0)                       # gap NACKed; RETRANS repairs
    assert got == list(range(6))
    assert sub.decode_errors == 0


def test_unresolved_type_id_drops_and_arms_repair():
    """Deliver a referencing frame to a daemon that never saw the
    defining one: typed failure, counted, repaired — never a crash."""
    cost = CostModel.ideal()
    bus = make_bus(seed=4, hosts=2, cost=cost)
    reg = story_registry()
    pub = bus.client("node00", "feed", registry=reg)
    got = []
    sub = bus.client("node01", "mon")
    sub.subscribe("news.>", lambda s, o, i: got.append(o))
    # teach node01 the header *strings* with an untyped publish, so the
    # later failure is isolated to the type plane (string misses take
    # precedence and would mask it)
    pub.publish("news.x", {"warmup": True})
    bus.settle()
    # the typedef-defining frame exists but node01 never hears it
    bus.partition({"node00"}, {"node01"})
    pub.publish("news.x", make_story(reg, 0))
    bus.run_for(0.5)
    bus.heal()
    for n in range(1, 4):                  # typed region: references only
        pub.publish("news.x", make_story(reg, n))
    bus.run_for(5.0)
    daemon = bus.daemons["node01"]
    assert daemon.typedef_unresolved_dropped > 0
    # repair re-defined everything: warmup dict + all four stories
    stories = [o.get("n") for o in got[1:]]
    assert stories == list(range(4))
    assert sub.decode_errors == 0
    assert daemon.wire_stats()["typedef_unresolved_dropped"] == \
        daemon.typedef_unresolved_dropped


def test_late_joiner_catches_the_suffix():
    """A daemon started mid-session never saw the defining frame; the
    repair path must hand it the typedefs too."""
    bus = make_bus(seed=5, hosts=3)
    reg = story_registry()
    pub = bus.client("node00", "feed", registry=reg)
    bus.client("node01", "mon").subscribe("news.>", lambda *a: None)
    for n in range(5):
        pub.publish("news.x", make_story(reg, n))
    bus.settle()
    late_box = []
    late = bus.client("node02", "late")    # joins after the first frames
    late.subscribe("news.>", lambda s, o, i: late_box.append(o.get("n")))
    for n in range(5, 10):
        pub.publish("news.x", make_story(reg, n))
    bus.run_for(10.0)
    assert late_box, "late joiner heard nothing"
    assert late_box == list(range(late_box[0], 10))
    assert late.decode_errors == 0
    assert late.registry.has("story")


def test_guaranteed_payloads_stay_self_contained():
    """Ledgered bytes must decode with a fresh registry and *no*
    resolver: they outlive the session the type ids are scoped to."""
    bus = make_bus(seed=6, hosts=2)
    reg = story_registry()
    pub = bus.client("node00", "feed", registry=reg)
    received = []
    bus.client("node01", "mon").subscribe(
        "gd.>", lambda s, o, i: received.append(o.get("n")), durable=True)
    pub.publish("gd.data", make_story(reg, 7), qos=QoS.GUARANTEED)
    ledger = bus.host("node00").stable.get("gd.ledger")
    assert len(ledger) == 1
    obj = decode(ledger[0]["payload"], standard_registry())   # no resolver
    assert obj.get("n") == 7
    assert obj.get("source").get("name") == "Reuters"
    bus.settle(3.0)
    assert received == [7]


def test_plane_off_reproduces_inline_baseline():
    bus = make_bus(type_plane=False)
    reg = story_registry()
    pub = bus.client("node00", "feed", registry=reg)
    got = []
    sub = bus.client("node01", "mon")
    sub.subscribe("news.>", lambda s, o, i: got.append(o))
    for n in range(5):
        pub.publish("news.x", make_story(reg, n))
    bus.settle()
    assert [o.get("n") for o in got] == list(range(5))
    assert sub.registry.has("story")       # learned inline, the old way
    stats = bus.daemons["node00"].wire_stats()
    assert stats["type_plane"] is False
    assert stats["typedef_table_types"] == 0
    assert bus.daemons["node01"].wire_stats()["typedef_peer_sessions"] == 0


def test_explicit_inline_types_bypasses_the_plane():
    bus = make_bus()
    reg = story_registry()
    pub = bus.client("node00", "feed", registry=reg)
    got = []
    bus.client("node01", "mon").subscribe(
        "news.>", lambda s, o, i: got.append(i.size))
    pub.publish("news.x", make_story(reg, 0), inline_types=True)
    pub.publish("news.x", make_story(reg, 1), inline_types=True)
    bus.settle()
    assert bus.daemons["node00"].wire_stats()["typedef_table_types"] == 0
    assert got[0] == got[1]                # both self-contained, same size


def test_gated_daemon_still_learns_typedefs():
    """An uninterested daemon skips frame bodies via the interest gate
    but must still accumulate typedefs — a mid-stream subscribe decodes
    from the very next frame without repair."""
    bus = make_bus(seed=8, hosts=2, advertise_subscriptions=False)
    reg = story_registry()
    client = bus.client("node01", "mon")
    client.subscribe("quiet.>", lambda *a: None)   # daemon up, no interest
    pub = bus.client("node00", "feed", registry=reg)
    late_box = []
    for n in range(30):
        bus.sim.schedule(0.01 + n * 0.02, pub.publish,
                         "news.tick", make_story(reg, n))
    bus.sim.schedule(0.35, client.subscribe, "news.>",
                     lambda s, o, i: late_box.append(o.get("n")))
    bus.run_for(30.0)
    daemon = bus.daemons["node01"]
    assert daemon.skipped_frames > 0               # the prefix was gated
    assert late_box and late_box[0] > 0
    assert late_box == list(range(late_box[0], 30))
    assert client.decode_errors == 0
    # the typedefs arrived on skipped frames, before the subscribe
    assert daemon.wire_stats()["typedef_peer_types"] == 3
    session = bus.daemons["node00"].session
    assert daemon.reliable_stats(session).nacks_sent == 0


def test_exactly_once_under_corruption_with_type_plane():
    bus = make_bus(seed=11, hosts=3)
    bus.lan.corrupt_rate = 0.15
    reg = story_registry()
    inbox = []
    bus.client("node01", "mon").subscribe(
        "news.>", lambda s, o, i: inbox.append(o.get("n")))
    pub = bus.client("node00", "feed", registry=reg)
    for n in range(60):
        pub.publish("news.tick", make_story(reg, n))
    bus.run_for(60.0)
    assert bus.lan.frames_corrupted > 0
    assert inbox == list(range(60))


def test_conflicting_preregistered_shape_counts_decode_error():
    """A receiver whose registry already holds a *different* ``story``
    shape fails per-message decode (parity with inline mode) without
    crashing the daemon or poisoning other receivers."""
    bus = make_bus(seed=12, hosts=3)
    reg = story_registry()
    pub = bus.client("node00", "feed", registry=reg)
    conflicted_reg = standard_registry()
    conflicted_reg.register(TypeDescriptor(
        "story", attributes=[AttributeSpec("totally", "string")]))
    conflicted_box, clean_box = [], []
    conflicted = bus.client("node01", "mon", registry=conflicted_reg)
    conflicted.subscribe("news.>",
                         lambda s, o, i: conflicted_box.append(o))
    clean = bus.client("node02", "mon")
    clean.subscribe("news.>", lambda s, o, i: clean_box.append(o.get("n")))
    for n in range(5):
        pub.publish("news.x", make_story(reg, n))
    bus.settle()
    assert conflicted_box == []
    assert conflicted.decode_errors == 5
    assert clean_box == list(range(5))     # unaffected receiver
    assert clean.decode_errors == 0
