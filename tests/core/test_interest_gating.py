"""The interest-gated receive path: subject digests and lazy decode.

Tentpole contract: a daemon with no matching subscription pays O(header)
per frame — :func:`repro.core.wire.read_digest` reads the subject digest
region without materializing envelope bodies, the
:class:`~repro.core.subjects.SubjectTrie` answers ``matches_anything``
per subject, and :meth:`ReliableReceiver.try_skip` advances the session
window so the skip is *observably identical* to a full decode (same
stats, same traces, no NACKs).  Guaranteed/ledgered envelopes and
unsequenced telemetry always take the full path, and a mid-stream
subscribe is honoured from the very next frame (the late-interest
boundary documented in docs/PROTOCOLS.md).
"""

import pytest

from repro.core import (BusConfig, CorruptFrame, Envelope, EnvelopeView,
                        InformationBus, Packet, PacketKind, QoS, Router,
                        StringTable, UnresolvedStringId, decode_packet,
                        encode_packet, read_digest)
from repro.core import wire
from repro.core.reliable import ReliableConfig, ReliableReceiver
from repro.objects import (AttributeSpec, DataObject, TypeDescriptor,
                           standard_registry)
from repro.sim import CostModel, Simulator
from repro.sim.framing import frame, unframe


# ----------------------------------------------------------------------
# codec level: the digest region
# ----------------------------------------------------------------------

def make_envelope(subject="feed.equity.gmc", seq=1, session="node00#0",
                  **kw):
    return Envelope(subject=subject, sender="node00.pub", session=session,
                    seq=seq, payload=b"payload-bytes", publish_time=0.5,
                    **kw)


def test_digest_roundtrip_plain():
    packet = Packet(PacketKind.DATA, "node00#0",
                    [make_envelope(seq=4), make_envelope("feed.fx.eur", 5)],
                    session_start=0.25)
    digest = read_digest(encode_packet(packet))
    assert digest is not None
    assert digest.kind is PacketKind.DATA
    assert digest.session == "node00#0"
    assert digest.session_start == 0.25
    assert digest.subjects == ("feed.equity.gmc", "feed.fx.eur")
    assert digest.entries == [("node00#0", 4), ("node00#0", 5)]
    assert digest.needs_full is False


def test_digest_roundtrip_compressed():
    table = StringTable()
    first = encode_packet(
        Packet(PacketKind.DATA, "node00#0", [make_envelope(seq=1)],
               session_start=0.0), table=table)
    second = encode_packet(
        Packet(PacketKind.DATA, "node00#0", [make_envelope(seq=2)],
               session_start=0.0), table=table)
    tables = {}
    d1 = read_digest(first, tables=tables)
    assert d1.subjects == ("feed.equity.gmc",)
    assert d1.entries == [("node00#0", 1)]
    # the second frame is reference-only on the wire; the digest resolves
    # through the table the first frame defined
    d2 = read_digest(second, tables=tables)
    assert d2.subjects == ("feed.equity.gmc",)
    assert d2.entries == [("node00#0", 2)]


def test_digest_repeated_subject_listed_once():
    packet = Packet(PacketKind.DATA, "node00#0",
                    [make_envelope(seq=s) for s in (1, 2, 3)],
                    session_start=0.0)
    digest = read_digest(encode_packet(packet))
    assert digest.subjects == ("feed.equity.gmc",)
    assert [seq for _, seq in digest.entries] == [1, 2, 3]


def test_control_frames_have_no_digest():
    heartbeat = Packet(PacketKind.HEARTBEAT, "node00#0", last_seq=9,
                       session_start=0.0)
    assert read_digest(encode_packet(heartbeat)) is None
    nack = Packet(PacketKind.NACK, "node01#0", nack_range=(3, 5))
    assert read_digest(encode_packet(nack)) is None


def test_needs_full_for_ledgered_and_unsequenced():
    ledgered = Packet(PacketKind.DATA, "node00#0",
                      [make_envelope(seq=1, qos=QoS.GUARANTEED,
                                     ledger_id="node00.pub:1")],
                      session_start=0.0)
    assert read_digest(encode_packet(ledgered)).needs_full is True
    stat = Packet(PacketKind.DATA, "node00#0",
                  [make_envelope("_bus.stat.node00", seq=0)],
                  session_start=0.0)
    assert read_digest(encode_packet(stat)).needs_full is True
    mixed = Packet(PacketKind.DATA, "node00#0",
                   [make_envelope(seq=1),
                    make_envelope(seq=2, qos=QoS.GUARANTEED,
                                  ledger_id="node00.pub:2")],
                   session_start=0.0)
    assert read_digest(encode_packet(mixed)).needs_full is True


def test_foreign_session_entries_carry_their_session():
    """A RETRANS can repair envelopes from a session other than the
    packet's own (router store-and-forward); the digest says whose."""
    packet = Packet(PacketKind.RETRANS, "router#0",
                    [make_envelope(seq=7, session="node05#0")],
                    session_start=0.0)
    digest = read_digest(encode_packet(packet))
    assert digest.entries == [("node05#0", 7)]


def test_unresolved_digest_matches_full_decode_failure():
    """A receiver that missed the defining frame fails identically via
    the digest path and the full path: same exception type, same session,
    same seq span — so gated and ungated daemons arm the same repair."""
    table = StringTable()
    encode_packet(Packet(PacketKind.DATA, "node00#0",
                         [make_envelope(seq=1)], session_start=0.0),
                  table=table)
    reference_only = encode_packet(
        Packet(PacketKind.DATA, "node00#0", [make_envelope(seq=2)],
               session_start=0.0), table=table)
    with pytest.raises(UnresolvedStringId) as via_digest:
        read_digest(reference_only, tables={})
    with pytest.raises(UnresolvedStringId) as via_decode:
        decode_packet(reference_only, tables={})
    assert via_digest.value.session == via_decode.value.session
    assert via_digest.value.first_seq == via_decode.value.first_seq
    assert via_digest.value.last_seq == via_decode.value.last_seq
    assert via_digest.value.missing <= via_decode.value.missing


def test_every_corrupted_copy_raises_from_read_digest():
    """The CRC guards the digest region too: any bit flip anywhere in
    the frame raises before the gate can act on a damaged digest."""
    data = encode_packet(Packet(PacketKind.DATA, "node00#0",
                                [make_envelope(seq=1)], session_start=0.0))
    read_digest(data)                 # prime the digest memo
    for bit in range(0, 8 * len(data), 7):
        corrupted = bytearray(data)
        corrupted[bit // 8] ^= 1 << (bit % 8)
        with pytest.raises(CorruptFrame):
            read_digest(bytes(corrupted))
    assert read_digest(data).entries == [("node00#0", 1)]


def test_semantically_bad_digest_is_corrupt_on_both_paths():
    """A digest entry with unknown flag bits (valid CRC) is rejected by
    read_digest AND by decode_packet — the frame drops whole either way,
    so gated and ungated receivers stay in lockstep."""
    subject = "zq.unique.subject"
    data = encode_packet(Packet(PacketKind.DATA, "node00#0",
                                [make_envelope(subject, seq=1)],
                                session_start=0.0))
    body = bytearray(unframe(data))
    marker = bytes([len(subject)]) + subject.encode()
    at = body.index(marker)           # first occurrence: the digest entry
    assert body[at - 1] == 0          # its dflags byte
    body[at - 1] = 0x80               # an undefined digest flag
    tampered = frame(bytes(body))
    with pytest.raises(CorruptFrame):
        read_digest(tampered)
    with pytest.raises(CorruptFrame):
        decode_packet(tampered)


def test_digest_memo_shares_parses():
    wire.configure_decode_memo()
    data = encode_packet(Packet(PacketKind.DATA, "node00#0",
                                [make_envelope(seq=1)], session_start=0.0))
    read_digest(data)
    read_digest(data)
    metrics = wire.wire_metrics()
    assert metrics.counter("wire.digest_memo.misses").value == 1
    assert metrics.counter("wire.digest_memo.hits").value == 1


# ----------------------------------------------------------------------
# lazy envelope decode
# ----------------------------------------------------------------------

def test_decoded_envelopes_are_lazy_views():
    wire.configure_decode_memo()
    data = encode_packet(Packet(PacketKind.DATA, "node00#0",
                                [make_envelope(seq=1)], session_start=0.0))
    envelope = decode_packet(data).envelopes[0]
    assert isinstance(envelope, EnvelopeView)
    assert not envelope.hydrated
    metrics = wire.wire_metrics()
    assert metrics.counter("wire.lazy.views").value == 1
    assert metrics.counter("wire.lazy.hydrations").value == 0
    assert envelope.payload == b"payload-bytes"   # hydrates exactly once
    assert envelope.hydrated
    assert envelope.payload == b"payload-bytes"
    assert metrics.counter("wire.lazy.hydrations").value == 1


def test_envelope_view_equals_eager_envelope():
    data = encode_packet(Packet(PacketKind.DATA, "node00#0",
                                [make_envelope(seq=3)], session_start=0.0))
    view = decode_packet(data).envelopes[0]
    eager = make_envelope(seq=3)
    assert view == eager
    assert eager == view              # reflected comparison too
    assert view != make_envelope(seq=4)


# ----------------------------------------------------------------------
# try_skip: the window-advance contract
# ----------------------------------------------------------------------

def make_receiver():
    sim = Simulator(seed=1)
    delivered, nacks = [], []
    receiver = ReliableReceiver(
        sim, ReliableConfig(),
        deliver=lambda e, r: delivered.append(e.seq),
        send_nack=lambda s, f, l: nacks.append((s, f, l)))
    return sim, receiver, delivered, nacks


def prime(receiver, upto=3, session="node00#0"):
    for seq in range(1, upto + 1):
        receiver.handle_envelope(make_envelope(seq=seq, session=session),
                                 session_start=0.0)


def test_try_skip_contiguous_advances_window():
    sim, receiver, delivered, nacks = make_receiver()
    prime(receiver)
    before = receiver.stats("node00#0").delivered
    assert receiver.try_skip([("node00#0", 4), ("node00#0", 5)])
    stats = receiver.stats("node00#0")
    assert stats.delivered == before + 2
    assert nacks == []
    # the next decoded envelope slots straight in: no phantom gap
    receiver.handle_envelope(make_envelope(seq=6), session_start=0.0)
    assert delivered == [1, 2, 3, 6]


def test_try_skip_counts_duplicates():
    sim, receiver, delivered, nacks = make_receiver()
    prime(receiver)
    assert receiver.try_skip([("node00#0", 2)])   # a retransmitted dup
    assert receiver.stats("node00#0").duplicates == 1
    assert receiver.stats("node00#0").delivered == 3


def test_try_skip_refuses_unknown_session():
    sim, receiver, delivered, nacks = make_receiver()
    assert not receiver.try_skip([("stranger#0", 1)])


def test_try_skip_refuses_gap():
    sim, receiver, delivered, nacks = make_receiver()
    prime(receiver)
    assert not receiver.try_skip([("node00#0", 6)])   # would open a gap
    assert receiver.stats("node00#0").delivered == 3  # untouched


def test_try_skip_refuses_while_buffered():
    sim, receiver, delivered, nacks = make_receiver()
    prime(receiver)
    receiver.handle_envelope(make_envelope(seq=6), session_start=0.0)
    assert not receiver.try_skip([("node00#0", 4)])   # full path must run


def test_try_skip_all_or_nothing():
    """One bad entry rejects the whole frame with no partial commit."""
    sim, receiver, delivered, nacks = make_receiver()
    prime(receiver)
    assert not receiver.try_skip([("node00#0", 4), ("node00#0", 9)])
    assert receiver.stats("node00#0").delivered == 3
    receiver.handle_envelope(make_envelope(seq=4), session_start=0.0)
    assert delivered == [1, 2, 3, 4]


def test_heartbeat_after_skip_sees_no_gap():
    """A skip must leave ``known_last`` consistent, or the next
    heartbeat would NACK data the daemon chose not to decode."""
    sim, receiver, delivered, nacks = make_receiver()
    prime(receiver)
    assert receiver.try_skip([("node00#0", 4)])
    receiver.handle_heartbeat("node00#0", last_seq=4, session_start=0.0)
    sim.run_until(sim.now + 10.0)
    assert nacks == []


# ----------------------------------------------------------------------
# end to end: the gated daemon
# ----------------------------------------------------------------------

def make_bus(seed=3, hosts=4, gating=True, **cfg):
    bus = InformationBus(seed=seed, cost=CostModel.ideal(),
                         config=BusConfig(interest_gating=gating, **cfg))
    bus.add_hosts(hosts)
    return bus


def test_uninterested_daemon_skips_frames():
    # adverts off so the only digest-bearing frames are the feed itself
    # (advert snapshots are themselves skippable on router-less hosts,
    # which would muddy the interested-daemon-never-skips assertion)
    bus = make_bus(advertise_subscriptions=False)
    got = []
    bus.client("node01", "mon").subscribe(
        "feed.>", lambda s, p, i: got.append(p["n"]))
    bus.client("node02", "mon").subscribe("quiet.>", lambda *a: None)
    publisher = bus.client("node00", "pub")
    for n in range(120):
        publisher.publish("feed.tick", {"n": n})
    bus.run_for(10.0)
    assert got == list(range(120))
    quiet = bus.daemons["node02"]
    assert quiet.skipped_frames > 0
    assert quiet.skipped_envelopes >= quiet.skipped_frames
    assert bus.daemons["node01"].skipped_frames == 0   # interested: full path
    # the skip is invisible to the reliable layer: both daemons tracked
    # the publisher session identically and neither ever NACKed
    session = bus.daemons["node00"].session
    interested = bus.daemons["node01"].reliable_stats(session)
    gated = quiet.reliable_stats(session)
    assert gated.delivered == interested.delivered
    assert gated.nacks_sent == interested.nacks_sent == 0
    stats = quiet.wire_stats()
    assert stats["interest_gating"] is True
    assert stats["skipped_frames"] == quiet.skipped_frames
    assert stats["skipped_envelopes"] == quiet.skipped_envelopes


def test_gating_knob_off_disables_skip():
    bus = make_bus(gating=False)
    bus.client("node02", "mon").subscribe("quiet.>", lambda *a: None)
    publisher = bus.client("node00", "pub")
    for n in range(40):
        publisher.publish("feed.tick", {"n": n})
    bus.run_for(5.0)
    assert all(d.skipped_frames == 0 for d in bus.daemons.values())
    assert bus.daemons["node02"].wire_stats()["interest_gating"] is False


def test_late_interest_subscribe_mid_stream():
    """Satellite: the late-interest boundary (docs/PROTOCOLS.md).  While
    uninterested, a daemon *consumes* the stream — window advanced,
    bodies dropped.  A mid-stream subscribe is honoured from the very
    next frame; the skipped prefix is gone for good and is NOT repaired
    (it was delivered-by-choice, not lost), so no NACK ever fires."""
    bus = make_bus(seed=7, hosts=2)
    late_box = []
    client = bus.client("node01", "mon")
    client.subscribe("quiet.>", lambda *a: None)   # daemon up, no interest
    publisher = bus.client("node00", "pub")
    for n in range(30):
        bus.sim.schedule(0.01 + n * 0.02, publisher.publish,
                         "feed.tick", {"n": n})
    join_at = 0.35
    bus.sim.schedule(join_at, client.subscribe, "feed.>",
                     lambda s, p, i: late_box.append(p["n"]))
    bus.run_for(30.0)
    daemon = bus.daemons["node01"]
    assert daemon.skipped_frames > 0               # the prefix was gated
    assert late_box, "late subscriber heard nothing"
    assert late_box == list(range(late_box[0], 30))  # contiguous suffix
    assert late_box[0] > 0                          # prefix really skipped
    session = bus.daemons["node00"].session
    assert daemon.reliable_stats(session).nacks_sent == 0
    assert daemon.reliable_stats(session).delivered == 30


@pytest.mark.parametrize("compression", [True, False])
def test_exactly_once_under_corruption_with_gating(compression):
    """Satellite: a corrupted frame (digest region included) drops whole
    and arms repair exactly as before gating existed — interested daemons
    recover exactly-once, uninterested daemons still skip clean frames."""
    bus = make_bus(seed=11, hosts=5, wire_compression=compression)
    bus.lan.corrupt_rate = 0.15
    inboxes = {}
    for i in (1, 2, 3):
        box = []
        inboxes[f"node{i:02d}"] = box
        bus.client(f"node{i:02d}", "mon").subscribe(
            "feed.>", lambda s, p, i, box=box: box.append(p["n"]))
    bus.client("node04", "mon").subscribe("quiet.>", lambda *a: None)
    publisher = bus.client("node00", "pub")
    for n in range(80):
        publisher.publish("feed.tick", {"n": n})
    bus.run_for(60.0)
    assert bus.lan.frames_corrupted > 0
    assert sum(d.corrupt_dropped for d in bus.daemons.values()) > 0
    for address, box in inboxes.items():
        assert box == list(range(80)), f"{address} saw {len(box)}"
    assert bus.daemons["node04"].skipped_frames > 0


def test_guaranteed_frames_take_full_path():
    """Ledgered envelopes run the ack+dedupe protocol on every daemon,
    subscriber or not — the gate must never skip them."""
    bus = make_bus(seed=5, advertise_subscriptions=False)
    got = []
    bus.client("node02", "ledger").subscribe(
        "g.>", lambda s, p, i: got.append(p["n"]), durable=True)
    publisher = bus.client("node00", "pub")
    for n in range(15):
        publisher.publish("g.event", {"n": n}, qos=QoS.GUARANTEED)
    bus.run_for(30.0)
    assert sorted(got) == list(range(15))
    assert bus.daemons["node00"].guaranteed_pending() == []
    # node03 subscribes to nothing, yet decoded every ledgered frame
    assert bus.daemons["node03"].skipped_frames == 0


def test_router_forwarding_interest_rides_the_gate():
    """A router leg's forwarding patterns live in its host daemon's
    subscription trie, so the digest gate consults the forwarding table
    for free: non-forwarded subjects are skipped on the router's bus,
    forwarded ones are decoded and cross."""
    sim = Simulator(seed=1)
    config = BusConfig()
    config.advert_interval = 0.5
    east = InformationBus(cost=CostModel.ideal(), name="east", sim=sim,
                          config=config)
    west = InformationBus(cost=CostModel.ideal(), name="west", sim=sim,
                          config=config)
    east.add_hosts(3, prefix="e")
    west.add_hosts(2, prefix="w")
    router = Router()
    router.add_leg(east)
    router.add_leg(west)
    reg = standard_registry()
    reg.register(TypeDescriptor(
        "story", attributes=[AttributeSpec("headline", "string")]))
    received = []
    west.client("w00", "monitor").subscribe(
        "news.>", lambda s, o, i: received.append(s))
    sim.run_until(2.0)                 # advert propagates; leg subscribes
    pub = east.client("e00", "feed", registry=reg)
    story = DataObject(reg, "story", headline="X")
    for _ in range(25):
        pub.publish("sports.scores", story)    # nobody anywhere wants it
    sim.run_until(4.0)
    gated = [east.daemons[h].skipped_frames for h in ("e01", "e02")]
    assert all(count > 0 for count in gated), gated
    assert all(s["forwarded"] == 0 for s in router.leg_stats().values())
    pub.publish("news.equity.gmc", story)      # forwarded: full path
    sim.run_until(6.0)
    assert received == ["news.equity.gmc"]
