"""End-to-end pub/sub tests on the simulated bus (Figure 1's model)."""

import pytest

from repro.core import BusDownError, InformationBus
from repro.objects import (AttributeSpec, DataObject, TypeDescriptor,
                           standard_registry)
from repro.sim import CostModel


def make_bus(n=3, **kwargs):
    bus = InformationBus(seed=1, cost=CostModel.ideal(), **kwargs)
    bus.add_hosts(n)
    return bus


def collector():
    received = []

    def on_message(subject, obj, info):
        received.append((subject, obj, info))

    return received, on_message


def story_registry():
    reg = standard_registry()
    reg.register(TypeDescriptor(
        "story", attributes=[AttributeSpec("headline", "string")]))
    return reg


def test_publish_subscribe_roundtrip():
    bus = make_bus()
    reg = story_registry()
    pub = bus.client("node00", "feed", registry=reg)
    received, on_message = collector()
    sub = bus.client("node01", "monitor")
    sub.subscribe("news.equity.*", on_message)
    story = DataObject(reg, "story", headline="Chips up")
    pub.publish("news.equity.gmc", story)
    bus.settle()
    assert len(received) == 1
    subject, obj, info = received[0]
    assert subject == "news.equity.gmc"
    assert obj == story                      # structural equality
    assert obj.get("headline") == "Chips up"
    assert info.sender == "node00.feed"
    assert info.latency > 0


def test_receiver_learns_types_dynamically():
    """The subscriber has a bare registry; inline metadata teaches it."""
    bus = make_bus()
    reg = story_registry()
    pub = bus.client("node00", "feed", registry=reg)
    received, on_message = collector()
    sub = bus.client("node01", "monitor")   # fresh standard registry
    sub.subscribe(">", on_message)
    pub.publish("news.equity.gmc", DataObject(reg, "story", headline="X"))
    bus.settle()
    assert sub.registry.has("story")
    assert received[0][1].attribute_type("headline") == "string"


def test_without_inline_types_unknown_type_is_counted():
    bus = make_bus()
    reg = story_registry()
    pub = bus.client("node00", "feed", registry=reg)
    received, on_message = collector()
    sub = bus.client("node01", "monitor")
    sub.subscribe(">", on_message)
    pub.publish("news.x", DataObject(reg, "story", headline="X"),
                inline_types=False)
    bus.settle()
    assert received == []
    assert sub.decode_errors == 1


def test_anonymous_many_to_many():
    bus = make_bus(4)
    reg = story_registry()
    pubs = [bus.client(f"node0{i}", f"feed{i}", registry=reg)
            for i in (0, 1)]
    boxes = []
    for i in (2, 3):
        received, on_message = collector()
        bus.client(f"node0{i}", f"mon{i}").subscribe("news.>", on_message)
        boxes.append(received)
    for pub in pubs:
        pub.publish("news.equity.gmc",
                    DataObject(reg, "story", headline=pub.name))
    bus.settle()
    for received in boxes:
        assert len(received) == 2
        assert {o.get("headline") for _, o, _ in received} == \
            {"feed0", "feed1"}


def test_same_host_subscriber_receives_local_publish():
    bus = make_bus(1)
    reg = story_registry()
    pub = bus.client("node00", "feed", registry=reg)
    received, on_message = collector()
    bus.client("node00", "monitor").subscribe("local.>", on_message)
    pub.publish("local.topic.a", DataObject(reg, "story", headline="X"))
    bus.settle()
    assert len(received) == 1


def test_publisher_does_not_receive_unsubscribed_subjects():
    bus = make_bus()
    reg = story_registry()
    pub = bus.client("node00", "feed", registry=reg)
    received, on_message = collector()
    sub = bus.client("node01", "monitor")
    sub.subscribe("other.subject", on_message)
    pub.publish("news.equity.gmc", DataObject(reg, "story", headline="X"))
    bus.settle()
    assert received == []


def test_fifo_order_per_sender():
    bus = make_bus()
    reg = story_registry()
    pub = bus.client("node00", "feed", registry=reg)
    received, on_message = collector()
    bus.client("node01", "monitor").subscribe("seq.>", on_message)
    for i in range(50):
        pub.publish("seq.test", DataObject(reg, "story", headline=f"{i:03d}"))
    bus.settle()
    headlines = [o.get("headline") for _, o, _ in received]
    assert headlines == [f"{i:03d}" for i in range(50)]


def test_new_subscriber_gets_only_new_messages():
    """P4: 'A new subscriber ... will start receiving immediately new
    objects' — but not history."""
    bus = make_bus()
    reg = story_registry()
    pub = bus.client("node00", "feed", registry=reg)
    pub.publish("live.a", DataObject(reg, "story", headline="old"))
    bus.settle()
    received, on_message = collector()
    bus.client("node01", "late_monitor").subscribe("live.>", on_message)
    bus.run_for(1.0)   # heartbeats from the old traffic arrive meanwhile
    pub.publish("live.a", DataObject(reg, "story", headline="new"))
    bus.settle()
    assert [o.get("headline") for _, o, _ in received] == ["new"]


def test_new_publisher_reaches_existing_subscribers():
    bus = make_bus()
    received, on_message = collector()
    bus.client("node01", "monitor").subscribe("evt.>", on_message)
    bus.run_for(0.5)
    reg = story_registry()
    late_pub = bus.client("node02", "late_feed", registry=reg)
    late_pub.publish("evt.x", DataObject(reg, "story", headline="hello"))
    bus.settle()
    assert len(received) == 1


def test_unsubscribe_stops_delivery():
    bus = make_bus()
    reg = story_registry()
    pub = bus.client("node00", "feed", registry=reg)
    received, on_message = collector()
    sub_client = bus.client("node01", "monitor")
    subscription = sub_client.subscribe("x.y", on_message)
    pub.publish("x.y", DataObject(reg, "story", headline="1"))
    bus.settle()
    sub_client.unsubscribe(subscription)
    pub.publish("x.y", DataObject(reg, "story", headline="2"))
    bus.settle()
    assert len(received) == 1
    sub_client.unsubscribe(subscription)   # idempotent


def test_overlapping_subscriptions_fire_separately():
    bus = make_bus()
    reg = story_registry()
    pub = bus.client("node00", "feed", registry=reg)
    client = bus.client("node01", "monitor")
    hits = []
    client.subscribe("news.>", lambda s, o, i: hits.append("wild"))
    client.subscribe("news.equity.gmc", lambda s, o, i: hits.append("exact"))
    pub.publish("news.equity.gmc", DataObject(reg, "story", headline="X"))
    bus.settle()
    assert sorted(hits) == ["exact", "wild"]
    # one message counted once per client even with two matching patterns
    assert client.messages_received == 1


def test_publish_on_downed_host_raises():
    bus = make_bus()
    reg = story_registry()
    pub = bus.client("node00", "feed", registry=reg)
    bus.crash_host("node00")
    with pytest.raises(BusDownError):
        pub.publish("a.b", DataObject(reg, "story", headline="X"))


def test_bad_subject_rejected_at_publish():
    bus = make_bus()
    reg = story_registry()
    pub = bus.client("node00", "feed", registry=reg)
    with pytest.raises(Exception):
        pub.publish("news.*", DataObject(reg, "story", headline="X"))


def test_scalar_payloads_work():
    """The bus moves any marshallable value, not just DataObjects."""
    bus = make_bus()
    pub = bus.client("node00", "sensor")
    received, on_message = collector()
    bus.client("node01", "logger").subscribe("temp.>", on_message)
    pub.publish("temp.litho8", {"celsius": 21.5, "ok": True})
    bus.settle()
    assert received[0][1] == {"celsius": 21.5, "ok": True}


def test_client_close_detaches():
    bus = make_bus()
    client = bus.client("node01", "monitor")
    client.subscribe("a.b", lambda *a: None)
    client.close()
    assert bus.daemon("node01").subscription_count() == 0
    assert "monitor" not in bus.daemon("node01").clients


def test_bus_facade_helpers():
    bus = make_bus(3)
    assert len(bus.hosts()) == 3
    assert bus.host("node00").address == "node00"
    assert bus.daemon("node01").up
    with pytest.raises(KeyError):
        bus.client("ghost-host", "app")
    bus.partition({"node00"})
    assert bus.lan.partitioned()
    bus.heal()
    assert not bus.lan.partitioned()


def test_run_until_idle_after_shutdown():
    """run_until_idle drains once every periodic source is stopped."""
    bus = make_bus(1)
    daemon = bus.daemon("node00")
    daemon._heartbeat.stop()
    if daemon._advert_timer is not None:
        daemon._advert_timer.stop()
    daemon._gpub.shutdown()
    bus.run_until_idle()
    assert bus.sim.pending() == 0
