"""Daemon-level tests: tracing, counters, advertisement, edge cases."""

from repro.core import (ADVERT_SUBJECT, BusConfig, InformationBus, QoS,
                        validate_subject)
from repro.objects import (AttributeSpec, DataObject, TypeDescriptor,
                           standard_registry)
from repro.sim import CostModel, Tracer


def story_registry():
    reg = standard_registry()
    reg.register(TypeDescriptor(
        "story", attributes=[AttributeSpec("n", "int")]))
    return reg


def test_tracer_records_publish_events():
    tracer = Tracer(enabled=True)
    bus = InformationBus(seed=1, cost=CostModel.ideal(), tracer=tracer)
    bus.add_hosts(2)
    reg = story_registry()
    pub = bus.client("node00", "feed", registry=reg)
    bus.client("node01", "mon").subscribe("t.>", lambda *a: None)
    pub.publish("t.x", DataObject(reg, "story", n=1))
    bus.settle(1.0)
    publishes = tracer.select("publish", subject="t.x")
    assert len(publishes) == 1
    assert publishes[0]["size"] > 0


def test_tracer_records_nack_and_retransmit():
    tracer = Tracer(enabled=True)
    cost = CostModel.ideal()
    bus = InformationBus(seed=2, cost=cost, tracer=tracer)
    bus.add_hosts(2)
    reg = story_registry()
    pub = bus.client("node00", "feed", registry=reg)
    bus.client("node01", "mon").subscribe("t.>", lambda *a: None)
    pub.publish("t.x", DataObject(reg, "story", n=0))
    bus.settle(0.5)
    cost.loss_probability = 1.0
    pub.publish("t.x", DataObject(reg, "story", n=1))
    bus.run_for(0.001)
    cost.loss_probability = 0.0
    pub.publish("t.x", DataObject(reg, "story", n=2))
    bus.settle(2.0)
    assert tracer.count("nack") >= 1
    assert tracer.count("retransmit") >= 1


def test_daemon_counters():
    bus = InformationBus(seed=3, cost=CostModel.ideal())
    bus.add_hosts(2)
    reg = story_registry()
    pub = bus.client("node00", "feed", registry=reg)
    bus.client("node01", "mon").subscribe("c.>", lambda *a: None)
    for n in range(3):
        pub.publish("c.x", DataObject(reg, "story", n=n))
    bus.settle(1.0)
    assert bus.daemon("node00").published == 3
    assert bus.daemon("node01").delivered == 3
    assert bus.daemon("node01").subscription_count() == 1


def test_subscription_advertisement_on_wire():
    bus = InformationBus(seed=4, cost=CostModel.ideal())
    bus.add_hosts(2)
    adverts = []
    watcher = bus.client("node00", "watcher")
    watcher.subscribe(ADVERT_SUBJECT,
                      lambda s, o, i: adverts.append(o))
    mon = bus.client("node01", "mon")
    sub = mon.subscribe("news.equity.*", lambda *a: None)
    bus.run_for(0.5)
    assert any(a["action"] == "add" and "news.equity.*" in a["patterns"]
               for a in adverts)
    mon.unsubscribe(sub)
    bus.run_for(0.5)
    assert any(a["action"] == "remove" and
               "news.equity.*" in a["patterns"] for a in adverts)


def test_reserved_patterns_not_advertised():
    bus = InformationBus(seed=5, cost=CostModel.ideal())
    bus.add_hosts(2)
    adverts = []
    bus.client("node00", "watcher").subscribe(
        ADVERT_SUBJECT, lambda s, o, i: adverts.append(o))
    bus.client("node01", "mon").subscribe("_private.stuff",
                                          lambda *a: None)
    bus.run_for(3.0)   # would include a snapshot if it were advertisable
    assert all("_private.stuff" not in a.get("patterns", [])
               for a in adverts)


def test_snapshot_advertisement_repeats():
    config = BusConfig()
    config.advert_interval = 0.5
    bus = InformationBus(seed=6, cost=CostModel.ideal(), config=config)
    bus.add_hosts(2)
    adverts = []
    bus.client("node00", "watcher").subscribe(
        ADVERT_SUBJECT, lambda s, o, i: adverts.append(o))
    bus.client("node01", "mon").subscribe("snap.>", lambda *a: None)
    bus.run_for(2.2)
    snapshots = [a for a in adverts if a["action"] == "snapshot"]
    assert len(snapshots) >= 3
    assert all(a["patterns"] == ["snap.>"] for a in snapshots)


def test_flush_forces_batched_messages_out():
    config = BusConfig()
    config.batch.enabled = True
    config.batch.batch_delay = 60.0       # effectively never
    config.batch.batch_bytes = 10**9
    # quiet the heartbeat too: otherwise receivers learn the stamped seq
    # and "repair" the batched message out of retention early
    config.reliable.heartbeat_interval = 120.0
    bus = InformationBus(seed=7, cost=CostModel.ideal(), config=config)
    bus.add_hosts(2)
    reg = story_registry()
    pub = bus.client("node00", "feed", registry=reg)
    got = []
    bus.client("node01", "mon").subscribe("f.>",
                                          lambda s, o, i: got.append(o))
    pub.publish("f.x", DataObject(reg, "story", n=1))
    bus.run_for(1.0)
    assert got == []                      # held by the batcher
    bus.daemon("node00").flush()
    bus.run_for(1.0)
    assert len(got) == 1


def test_max_depth_subject_accepted():
    deep = ".".join(["x"] * 32)
    assert validate_subject(deep)
    bus = InformationBus(seed=8, cost=CostModel.ideal())
    bus.add_hosts(2)
    got = []
    bus.client("node01", "mon").subscribe(deep, lambda s, o, i:
                                          got.append(s))
    bus.client("node00", "feed").publish(deep, 1)
    bus.settle(1.0)
    assert got == [deep]


def test_seen_ledger_dedupe_is_bounded():
    """The guaranteed-delivery dedupe memory evicts oldest past the cap.

    Non-durable subscribers never ack, so the publisher keeps
    republishing; the dedupe set must not grow with the number of
    distinct guaranteed messages ever seen.
    """
    config = BusConfig(seen_ledger_cap=10)
    bus = InformationBus(seed=9, cost=CostModel.ideal(), config=config)
    bus.add_hosts(2)
    got = []
    # a NON-durable subscriber: deliveries dedupe through _seen_ledgers
    bus.client("node01", "mon").subscribe("g.>",
                                          lambda s, p, i: got.append(p["n"]))
    pub = bus.client("node00", "feed")
    for n in range(40):
        pub.publish(f"g.{n}", {"n": n}, qos=QoS.GUARANTEED)
    bus.settle(5.0)
    daemon = bus.daemon("node01")
    assert set(got) == set(range(40))           # everything delivered...
    assert len(daemon._seen_ledgers) <= 10      # ...memory stays bounded


def test_seen_ledger_cap_above_working_set_dedupes_exactly():
    """With the cap covering the in-flight window, no duplicates leak."""
    config = BusConfig(seen_ledger_cap=100)
    bus = InformationBus(seed=9, cost=CostModel.ideal(), config=config)
    bus.add_hosts(2)
    got = []
    bus.client("node01", "mon").subscribe("g.>",
                                          lambda s, p, i: got.append(p["n"]))
    pub = bus.client("node00", "feed")
    for n in range(40):
        pub.publish(f"g.{n}", {"n": n}, qos=QoS.GUARANTEED)
    bus.settle(5.0)   # several republish rounds: dedupe absorbs them all
    assert sorted(got) == list(range(40))
    assert len(bus.daemon("node01")._seen_ledgers) <= 100
