"""Tests for information routers bridging buses over WAN links."""

from repro.core import BusConfig, InformationBus, Router, WanLink
from repro.objects import (AttributeSpec, DataObject, TypeDescriptor,
                           standard_registry)
from repro.sim import CostModel, Simulator


def story_registry():
    reg = standard_registry()
    reg.register(TypeDescriptor(
        "story", attributes=[AttributeSpec("headline", "string")]))
    return reg


def fast_config():
    """Short advert interval so routers learn subscriptions quickly."""
    config = BusConfig()
    config.advert_interval = 0.5
    return config


def two_buses(seed=1, link=None):
    sim = Simulator(seed=seed)
    east = InformationBus(cost=CostModel.ideal(), name="east", sim=sim,
                          config=fast_config())
    west = InformationBus(cost=CostModel.ideal(), name="west", sim=sim,
                          config=fast_config())
    east.add_hosts(3, prefix="e")
    west.add_hosts(3, prefix="w")
    router = Router(link=link)
    router.add_leg(east)
    router.add_leg(west)
    return sim, east, west, router


def test_cross_bus_delivery():
    sim, east, west, router = two_buses()
    reg = story_registry()
    pub = east.client("e00", "feed", registry=reg)
    received = []
    west.client("w00", "monitor").subscribe(
        "news.>", lambda s, o, i: received.append((s, o.get("headline"))))
    sim.run_until(2.0)   # advert propagates; router leg subscribes on east
    pub.publish("news.equity.gmc", DataObject(reg, "story", headline="X"))
    sim.run_until(4.0)
    assert received == [("news.equity.gmc", "X")]


def test_no_remote_subscription_no_forwarding():
    """'Messages are only re-published on buses for which there exists a
    subscription on that subject.'"""
    sim, east, west, router = two_buses()
    reg = story_registry()
    pub = east.client("e00", "feed", registry=reg)
    west.client("w00", "monitor").subscribe("sports.>", lambda *a: None)
    sim.run_until(2.0)
    pub.publish("news.equity.gmc", DataObject(reg, "story", headline="X"))
    sim.run_until(4.0)
    stats = router.leg_stats()
    assert all(s["forwarded"] == 0 for s in stats.values())


def test_wildcard_subscription_forwards():
    sim, east, west, router = two_buses()
    reg = story_registry()
    pub = east.client("e00", "feed", registry=reg)
    received = []
    west.client("w00", "monitor").subscribe(
        ">", lambda s, o, i: received.append(s))
    sim.run_until(2.0)
    pub.publish("anything.at.all", DataObject(reg, "story", headline="X"))
    sim.run_until(4.0)
    assert received == ["anything.at.all"]


def test_bidirectional_forwarding_without_loops():
    sim, east, west, router = two_buses()
    reg = story_registry()
    east_box, west_box = [], []
    east.client("e01", "mon").subscribe("chat.>",
                                        lambda s, o, i: east_box.append(s))
    west.client("w01", "mon").subscribe("chat.>",
                                        lambda s, o, i: west_box.append(s))
    sim.run_until(2.0)
    east.client("e00", "a", registry=reg).publish(
        "chat.room1", DataObject(reg, "story", headline="from-east"))
    west.client("w00", "b", registry=reg).publish(
        "chat.room1", DataObject(reg, "story", headline="from-west"))
    sim.run_until(6.0)
    # each side sees both messages exactly once: no ping-pong loop
    assert sorted(east_box) == ["chat.room1", "chat.room1"]
    assert sorted(west_box) == ["chat.room1", "chat.room1"]


def test_overlapping_patterns_forward_once():
    sim, east, west, router = two_buses()
    reg = story_registry()
    received = []
    mon = west.client("w00", "monitor")
    mon.subscribe("news.>", lambda s, o, i: received.append(s))
    mon.subscribe("news.equity.*", lambda s, o, i: received.append(s))
    sim.run_until(2.0)
    east.client("e00", "feed", registry=reg).publish(
        "news.equity.gmc", DataObject(reg, "story", headline="X"))
    sim.run_until(4.0)
    # two local subscription callbacks, but only ONE WAN transfer
    assert len(received) == 2
    east_leg = router.legs["east:router-east"]
    assert east_leg.messages_forwarded == 1


def test_subject_transform_at_egress():
    sim = Simulator(seed=2)
    plant = InformationBus(cost=CostModel.ideal(), name="plant", sim=sim,
                           config=fast_config())
    hq = InformationBus(cost=CostModel.ideal(), name="hq", sim=sim,
                        config=fast_config())
    plant.add_hosts(2, prefix="p")
    hq.add_hosts(2, prefix="h")
    router = Router()
    router.add_leg(plant)
    router.add_leg(hq, transform=lambda s: f"fab5.{s}")
    reg = story_registry()
    received = []
    hq.client("h00", "dashboard").subscribe(
        "fab5.>", lambda s, o, i: received.append(s))
    # the hq side wants "fab5.>"; the plant side must learn the interest.
    # Transforms are egress-side, so the plant leg needs the *untransformed*
    # interest; subscribe on hq to the transformed name and additionally
    # register the plant-side interest directly:
    router.legs["plant:router-plant"].remote_wants(
        "hq:router-hq", "add", ["cc.>"])
    sim.run_until(1.0)
    plant.client("p00", "cell", registry=reg).publish(
        "cc.litho8.thick", DataObject(reg, "story", headline="9.1um"))
    sim.run_until(3.0)
    assert received == ["fab5.cc.litho8.thick"]


def test_unsubscribe_withdraws_remote_interest():
    sim, east, west, router = two_buses()
    reg = story_registry()
    mon = west.client("w00", "monitor")
    sub = mon.subscribe("news.>", lambda *a: None)
    sim.run_until(2.0)
    east_leg = router.legs["east:router-east"]
    assert "news.>" in east_leg._forwarding
    mon.unsubscribe(sub)
    sim.run_until(4.0)
    assert "news.>" not in east_leg._forwarding


def test_router_logs_traffic_to_stable_storage():
    sim = Simulator(seed=3)
    east = InformationBus(cost=CostModel.ideal(), name="east", sim=sim,
                          config=fast_config())
    west = InformationBus(cost=CostModel.ideal(), name="west", sim=sim,
                          config=fast_config())
    east.add_hosts(2, prefix="e")
    west.add_hosts(2, prefix="w")
    router = Router()
    east_leg = router.add_leg(east, log_traffic=True)
    router.add_leg(west)
    reg = story_registry()
    west.client("w00", "mon").subscribe("log.>", lambda *a: None)
    sim.run_until(2.0)
    east.client("e00", "feed", registry=reg).publish(
        "log.me", DataObject(reg, "story", headline="X"))
    sim.run_until(4.0)
    log = east_leg.host.stable.read_log("router.log")
    assert len(log) == 1
    assert log[0]["subject"] == "log.me"


def test_wan_latency_delays_delivery():
    link = WanLink(latency=0.5, bandwidth_bytes_per_sec=1e9)
    sim, east, west, router = two_buses(seed=4, link=link)
    reg = story_registry()
    received = []
    west.client("w00", "mon").subscribe(
        "slow.>", lambda s, o, i: received.append(sim.now))
    sim.run_until(2.0)
    publish_time = sim.now
    east.client("e00", "feed", registry=reg).publish(
        "slow.x", DataObject(reg, "story", headline="X"))
    sim.run_until(5.0)
    assert len(received) == 1
    assert received[0] - publish_time >= 0.5


def test_three_bus_mesh():
    sim = Simulator(seed=5)
    buses = [InformationBus(cost=CostModel.ideal(), name=f"bus{i}", sim=sim,
                            config=fast_config()) for i in range(3)]
    for i, bus in enumerate(buses):
        bus.add_hosts(2, prefix=f"b{i}n")
    router = Router()
    for bus in buses:
        router.add_leg(bus)
    reg = story_registry()
    boxes = [[] for _ in buses]
    for i in (1, 2):
        buses[i].client(f"b{i}n00", "mon").subscribe(
            "m.>", lambda s, o, i_, box=boxes[i]: box.append(s))
    sim.run_until(2.0)
    buses[0].client("b0n00", "feed", registry=reg).publish(
        "m.x", DataObject(reg, "story", headline="X"))
    sim.run_until(5.0)
    assert boxes[1] == ["m.x"]
    assert boxes[2] == ["m.x"]


def test_two_router_chain_forwards_transitively():
    """A -router1- B -router2- C: interest and data cross both hops."""
    sim = Simulator(seed=6)
    buses = {}
    for name in ("a", "b", "c"):
        bus = InformationBus(cost=CostModel.ideal(), name=name, sim=sim,
                             config=fast_config())
        bus.add_hosts(2, prefix=name)
        buses[name] = bus
    router1 = Router(name="router1")
    router1.add_leg(buses["a"])
    router1.add_leg(buses["b"])
    router2 = Router(name="router2")
    router2.add_leg(buses["b"])
    router2.add_leg(buses["c"])

    reg = story_registry()
    received = []
    buses["c"].client("c00", "mon").subscribe(
        "chain.>", lambda s, o, i: received.append((s, i.via)))
    sim.run_until(4.0)   # interest: C -> router2 -> B -> router1 -> A
    buses["a"].client("a00", "feed", registry=reg).publish(
        "chain.x", DataObject(reg, "story", headline="hop hop"))
    sim.run_until(8.0)
    assert len(received) == 1
    subject, via = received[0]
    assert subject == "chain.x"
    assert via == ("router1", "router2")   # the full path, stamped


def test_cyclic_topology_terminates():
    """A triangle of routers must not loop forever; each message stops
    once its via stamp covers the cycle."""
    sim = Simulator(seed=7)
    buses = {}
    for name in ("a", "b", "c"):
        bus = InformationBus(cost=CostModel.ideal(), name=name, sim=sim,
                             config=fast_config())
        bus.add_hosts(2, prefix=name)
        buses[name] = bus
    pairs = [("a", "b"), ("b", "c"), ("c", "a")]
    routers = []
    for index, (left, right) in enumerate(pairs):
        router = Router(name=f"r{index}")
        router.add_leg(buses[left])
        router.add_leg(buses[right])
        routers.append(router)

    reg = story_registry()
    boxes = {name: [] for name in buses}
    for name, bus in buses.items():
        bus.client(f"{name}00", "mon").subscribe(
            "cyc.>", lambda s, o, i, name=name: boxes[name].append(i.via))
    sim.run_until(4.0)
    buses["a"].client("a01", "feed", registry=reg).publish(
        "cyc.x", DataObject(reg, "story", headline="round and round"))
    sim.run_until(12.0)   # would hang/explode if forwarding looped
    # every bus heard the message; copies are bounded by the number of
    # simple paths (a triangle has two directions around), and every
    # copy's via path visits each router at most once — no loops ever
    for name, box in boxes.items():
        assert 1 <= len(box) <= 3, (name, box)
        for via in box:
            assert len(via) == len(set(via))
    assert boxes["a"][0] == ()             # the original publication
    # exactly-once holds on loop-free topologies (the chain test); a
    # cyclic mesh trades duplicates for redundancy, as real deployments
    # of this architecture did when they wanted WAN path redundancy
