"""Edge cases of the outbound batcher: threshold interactions, timer
races, and re-entrant publishes from inside a flush callback."""

from repro.core import BatchConfig, Batcher, Envelope, QoS
from repro.sim import Simulator


def envelope(size_payload=50, subject="a.b"):
    return Envelope(subject=subject, sender="x", session="s#0", seq=0,
                    payload=b"\x00" * size_payload, qos=QoS.RELIABLE)


def make_batcher(sim, flush=None, batch_bytes=300, batch_delay=0.01,
                 max_messages=64):
    batches = []
    config = BatchConfig(enabled=True, batch_bytes=batch_bytes,
                         batch_delay=batch_delay, max_messages=max_messages)
    return Batcher(sim, config, flush or batches.append), batches


def test_max_messages_triggers_flush_exactly_at_cap():
    sim = Simulator()
    batcher, batches = make_batcher(sim, batch_bytes=10**9, max_messages=3)
    batcher.add(envelope(size_payload=1))
    batcher.add(envelope(size_payload=1))
    assert batches == []                    # 2 < cap: still gathering
    batcher.add(envelope(size_payload=1))   # hits the cap -> flush now
    assert [len(b) for b in batches] == [3]
    assert batcher.pending == 0
    # and the delay timer was cancelled with the flush
    sim.run_until(1.0)
    assert len(batches) == 1


def test_bytes_threshold_beats_pending_delay_timer():
    sim = Simulator()
    one = envelope().size
    batcher, batches = make_batcher(sim, batch_bytes=int(one * 2.5),
                                    batch_delay=0.01)
    batcher.add(envelope())                 # arms the delay timer
    sim.run_until(0.005)
    batcher.add(envelope())
    batcher.add(envelope())                 # crosses bytes mid-window
    assert [len(b) for b in batches] == [3]
    flushed_at = sim.now
    sim.run_until(0.02)                     # delay timer must NOT refire
    assert len(batches) == 1
    assert flushed_at < 0.01                # bytes won the race


def test_delay_fires_when_bytes_never_reached():
    sim = Simulator()
    batcher, batches = make_batcher(sim, batch_bytes=10**9,
                                    batch_delay=0.01)
    batcher.add(envelope())
    batcher.add(envelope())
    assert batches == []
    sim.run_until(0.011)
    assert [len(b) for b in batches] == [2]


def test_reentrant_add_from_flush_callback_lands_in_next_batch():
    sim = Simulator()
    batches = []
    holder = {}

    def flush(batch):
        batches.append(list(batch))
        if len(batches) == 1:
            # an application reacting to its own flush by publishing
            holder["batcher"].add(envelope(subject="re.entrant"))

    batcher, _ = make_batcher(sim, flush=flush, batch_bytes=10**9,
                              max_messages=2)
    holder["batcher"] = batcher
    batcher.add(envelope())
    batcher.add(envelope())                 # cap -> flush -> re-entrant add
    assert [len(b) for b in batches] == [2]
    assert batcher.pending == 1             # not folded into batch 1
    sim.run_until(1.0)                      # its own delay window flushes it
    assert [len(b) for b in batches] == [2, 1]
    assert batches[1][0].subject == "re.entrant"


def test_reentrant_flush_does_not_recurse_forever():
    sim = Simulator()
    batches = []
    holder = {}

    def flush(batch):
        batches.append(list(batch))
        # pathological consumer: force-flush from inside the callback
        holder["batcher"].flush()

    batcher, _ = make_batcher(sim, flush=flush, batch_bytes=10**9,
                              max_messages=2)
    holder["batcher"] = batcher
    batcher.add(envelope())
    batcher.add(envelope())
    assert [len(b) for b in batches] == [2]
    assert batcher.pending == 0


def test_queued_bytes_is_a_running_counter_across_partial_drains():
    """``flush`` drains at most ``max_messages``; the byte counter must
    subtract exactly what left, so the remainder still crosses the bytes
    threshold on its own (a re-summed counter would agree here — this
    pins the running-counter bookkeeping against drift)."""
    from repro.core import BoundedQueue
    from repro.core.flow import POLICY_BLOCK

    sim = Simulator()
    batches = []
    config = BatchConfig(enabled=True, batch_bytes=10**9,
                         batch_delay=0.01, max_messages=4)
    batcher = Batcher(sim, config, batches.append,
                      queue=BoundedQueue("test.gather", capacity=16,
                                         policy=POLICY_BLOCK))
    one = envelope().size
    for _ in range(6):
        batcher.queue.offer(envelope())       # bypass add(): build backlog
        batcher._queued_bytes += one
    batcher.flush()                           # drains 4, leaves 2
    assert [len(b) for b in batches] == [4]
    assert batcher.pending == 2
    assert batcher._queued_bytes == 2 * one   # exactly the remainder
    sim.run_until(1.0)                        # remainder's delay window
    assert [len(b) for b in batches] == [4, 2]
    assert batcher._queued_bytes == 0
    batcher.add(envelope())
    batcher.shutdown()
    assert batcher._queued_bytes == 0         # shutdown resets cleanly
