"""Flow control on the WAN link: bounded store-and-forward queues,
observable drops, and backpressure on the router leg."""

from repro.core import (Admission, BusConfig, InformationBus,
                        POLICY_DROP_NEWEST, Router, WanLink)
from repro.objects import (AttributeSpec, DataObject, TypeDescriptor,
                           standard_registry)
from repro.sim import CostModel, Simulator
from repro.sim.trace import Tracer


def story_registry():
    reg = standard_registry()
    reg.register(TypeDescriptor(
        "story", attributes=[AttributeSpec("headline", "string")]))
    return reg


def fast_config():
    config = BusConfig()
    config.advert_interval = 0.5
    return config


def two_buses(seed=1, link=None, tracer=None):
    sim = Simulator(seed=seed)
    east = InformationBus(cost=CostModel.ideal(), name="east", sim=sim,
                          config=fast_config(), tracer=tracer)
    west = InformationBus(cost=CostModel.ideal(), name="west", sim=sim,
                          config=fast_config(), tracer=tracer)
    east.add_hosts(2, prefix="e")
    west.add_hosts(2, prefix="w")
    router = Router(link=link)
    router.add_leg(east)
    router.add_leg(west)
    return sim, east, west, router


def test_down_link_drops_are_counted_and_traced():
    tracer = Tracer(enabled=True)
    sim, east, west, router = two_buses(link=WanLink(), tracer=tracer)
    reg = story_registry()
    pub = east.client("e00", "feed", registry=reg)
    received = []
    west.client("w00", "monitor").subscribe(
        "news.>", lambda s, *_: received.append(s))
    sim.run_until(2.0)
    router.link.fail()
    for i in range(4):
        pub.publish(f"news.n{i}", DataObject(reg, "story", headline="X"))
    sim.run_until(4.0)
    assert received == []
    assert router.link.messages_dropped >= 4
    drops = tracer.select("flow.drop", reason="link-down")
    assert len(drops) >= 4
    assert drops[0]["queue"].startswith("wan[")
    # the leg noticed its forwards were shed
    stats = router.leg_stats()
    assert any(s["shed"] >= 4 for s in stats.values())


def test_saturated_link_queues_within_bounds_then_sheds():
    # a 1-message queue with drop-newest: the second of two back-to-back
    # forwards on a slow link sheds visibly instead of queueing forever
    slow = WanLink(latency=0.01, bandwidth_bytes_per_sec=500.0,
                   queue_capacity=1, overflow_policy=POLICY_DROP_NEWEST)
    sim, east, west, router = two_buses(link=slow)
    reg = story_registry()
    pub = east.client("e00", "feed", registry=reg)
    received = []
    west.client("w00", "monitor").subscribe(
        "news.>", lambda s, *_: received.append(s))
    sim.run_until(2.0)
    for i in range(6):
        pub.publish(f"news.n{i}", DataObject(reg, "story", headline="X"))
    sim.run_until(20.0)
    stats = router.leg_stats()
    shed = sum(s["shed"] for s in stats.values())
    assert shed > 0
    assert 0 < len(received) < 6
    flow = router.flow_stats()
    direction = [v for k, v in flow.items() if k != "messages_dropped"]
    assert direction   # per-direction queue stats exposed
    for snap in direction:
        assert snap["high_watermark"] <= snap["capacity"]
    assert sum(s["dropped"] for s in direction) == shed


def test_link_send_returns_admission():
    link = WanLink(queue_capacity=1, overflow_policy=POLICY_DROP_NEWEST,
                   bandwidth_bytes_per_sec=10.0)
    sim = Simulator(seed=1)
    delivered = []
    # first transfer starts immediately; second queues; third sheds
    assert link.send(sim, "a", "b", 100,
                     lambda: delivered.append(1)) is Admission.ACCEPTED
    assert link.send(sim, "a", "b", 100,
                     lambda: delivered.append(2)) is Admission.ACCEPTED
    assert link.send(sim, "a", "b", 100,
                     lambda: delivered.append(3)) is Admission.DROPPED
    # no_shed traffic defers instead
    assert link.send(sim, "a", "b", 100, lambda: delivered.append(4),
                     no_shed=True) is Admission.DEFERRED
    sim.run()
    assert delivered == [1, 2]
    stats = link.link_stats()
    assert stats["a->b"]["dropped_newest"] == 1
    assert stats["a->b"]["deferred"] == 1


def test_deprecated_stats_aliases_are_gone():
    # the PR-7 `stats()` shims had their two-release grace period;
    # `leg_stats()`/`link_stats()` are the only spellings now
    sim, east, west, router = two_buses()
    sim.run_until(1.0)
    assert not hasattr(router, "stats")
    assert not hasattr(router.link, "stats")
    assert len(router.leg_stats()) == 2
    assert "messages_dropped" in router.link.link_stats()
