"""Wire header compression end-to-end: fewer bytes, same behaviour.

The daemon-level contract: with ``BusConfig.wire_compression`` on (the
default), DATA/RETRANS frames ride the wire with string-table ids in
place of repeated header strings — measurably fewer bytes — while every
delivery guarantee holds unchanged: exactly-once in-order delivery under
corruption, NACK repair, and late joiners who never saw the defining
frames (the unresolvable-id path: drop + NACK + self-contained RETRANS,
never an exception).
"""

import pytest

from repro.core import BusConfig, InformationBus, QoS
from repro.sim import CostModel


def make_bus(compression, seed=11, hosts=4, corrupt_rate=0.0, **cfg):
    bus = InformationBus(seed=seed, cost=CostModel.ideal(),
                         config=BusConfig(wire_compression=compression,
                                          **cfg))
    bus.add_hosts(hosts)
    bus.lan.corrupt_rate = corrupt_rate
    return bus


def fanout_run(compression, messages=300, seed=3):
    # adverts off and a short idle tail keep the wire data-dominated, so
    # the byte comparison measures header compression, not heartbeats
    bus = make_bus(compression, seed=seed, advertise_subscriptions=False)
    boxes = []
    for i in range(1, 4):
        box = []
        boxes.append(box)
        bus.client(f"node{i:02d}", "mon").subscribe(
            "market.>", lambda s, p, i, box=box: box.append(p["n"]))
    publisher = bus.client("node00", "pub")
    for n in range(messages):
        publisher.publish("market.feed.equity.gmc.tick", {"n": n})
    bus.run_for(5.0)
    return bus, boxes


def test_compression_reduces_bytes_on_wire():
    on, on_boxes = fanout_run(True)
    off, off_boxes = fanout_run(False)
    # identical deliveries either way...
    assert on_boxes == off_boxes
    assert all(box == list(range(300)) for box in on_boxes)
    # ...for meaningfully fewer bytes: repeated headers dwarf the small
    # payloads, so the table-compressed run must save at least 25%
    assert on.lan.bytes_transmitted < 0.75 * off.lan.bytes_transmitted


def test_wire_stats_reflect_mode():
    on, _ = fanout_run(True, messages=10)
    stats = on.daemons["node00"].wire_stats()
    assert stats["compression"] is True
    assert stats["table_strings"] > 0           # the publisher interned
    consumer = on.daemons["node01"].wire_stats()
    assert consumer["peer_strings"] > 0         # the consumer learned
    off, _ = fanout_run(False, messages=10)
    stats = off.daemons["node00"].wire_stats()
    assert stats["compression"] is False
    assert stats["table_strings"] == 0


@pytest.mark.parametrize("compression", [True, False])
def test_exactly_once_under_corruption(compression):
    """The corrupt-rate NACK-repair guarantee holds in both modes."""
    bus = make_bus(compression, seed=11, hosts=5, corrupt_rate=0.15)
    inboxes = {}
    for i in range(1, 5):
        box = []
        inboxes[f"node{i:02d}"] = box
        bus.client(f"node{i:02d}", "mon").subscribe(
            "feed.>", lambda s, p, i, box=box: box.append(p["n"]))
    publisher = bus.client("node00", "pub")
    for n in range(80):
        publisher.publish("feed.tick", {"n": n})
    bus.run_for(60.0)
    assert bus.lan.frames_corrupted > 0         # the fault was exercised
    assert sum(d.corrupt_dropped for d in bus.daemons.values()) > 0
    for address, box in inboxes.items():
        assert box == list(range(80)), f"{address} saw {len(box)}"


@pytest.mark.parametrize("compression", [True, False])
def test_guaranteed_delivery_both_modes(compression):
    bus = make_bus(compression, seed=7, corrupt_rate=0.1)
    got = []
    bus.client("node02", "ledger").subscribe(
        "g.>", lambda s, p, i: got.append(p["n"]), durable=True)
    publisher = bus.client("node00", "pub")
    for n in range(20):
        publisher.publish("g.event", {"n": n}, qos=QoS.GUARANTEED)
    bus.run_for(60.0)
    assert sorted(got) == list(range(20))
    assert len(got) == len(set(got))
    assert bus.daemons["node00"].guaranteed_pending() == []


def test_late_joining_daemon_recovers_via_self_contained_retrans():
    """A daemon that joins mid-session hears frames whose header ids
    were defined in frames it never saw.  Those frames are unresolvable
    — dropped and counted, never raised to the app — and the armed NACK
    brings a RETRANS that defines everything it references, after which
    the joiner is fully caught up and stays in order."""
    bus = make_bus(True, seed=5, hosts=2)
    steady = []
    bus.client("node01", "mon").subscribe(
        "feed.>", lambda s, p, i: steady.append(p["n"]))
    publisher = bus.client("node00", "pub")
    late_box = []

    def join():
        bus.add_host("late00")
        bus.client("late00", "mon").subscribe(
            "feed.>", lambda s, p, i: late_box.append(p["n"]))

    # warm-up publishes carry the table definitions...
    for n in range(10):
        bus.sim.schedule(0.01 + n * 0.01, publisher.publish,
                         "feed.tick", {"n": n})
    bus.sim.schedule(0.5, join)
    # ...and everything after the join is reference-only on the wire
    for n in range(10, 30):
        bus.sim.schedule(0.6 + (n - 10) * 0.05, publisher.publish,
                         "feed.tick", {"n": n})
    bus.run_for(30.0)

    late = bus.daemons["late00"]
    assert late.unresolved_dropped > 0            # the path was exercised
    assert late.wire_stats()["unresolved_dropped"] == late.unresolved_dropped
    assert steady == list(range(30))              # bystander unaffected
    # the joiner heard a contiguous, in-order, exactly-once suffix that
    # covers everything published after it joined
    assert late_box, "late joiner heard nothing"
    assert late_box == list(range(late_box[0], 30))
    assert late_box[0] <= 10


def test_unresolvable_is_repaired_not_raised():
    """Force the defining frame to be lost to one receiver only: that
    receiver NACKs and recovers from the self-contained repair."""
    bus = make_bus(True, seed=9, hosts=3, corrupt_rate=0.3)
    boxes = {}
    for i in (1, 2):
        box = []
        boxes[f"node{i:02d}"] = box
        bus.client(f"node{i:02d}", "mon").subscribe(
            "t.>", lambda s, p, i, box=box: box.append(p["n"]))
    publisher = bus.client("node00", "pub")
    # many distinct subjects: definitions keep flowing, so losing any
    # defining frame makes later references unresolvable somewhere
    for n in range(60):
        publisher.publish(f"t.subj{n % 7}", {"n": n})
    bus.run_for(60.0)
    for address, box in boxes.items():
        assert box == list(range(60)), f"{address} saw {len(box)}"
