"""Unit tests for the unified metrics registry."""

import pytest

from repro.core.metrics import (Counter, DEFAULT_BUCKETS, Gauge, Histogram,
                                MetricsPublisher, MetricsRegistry,
                                sum_counters)
from repro.sim import Simulator


def test_counter_hot_path_and_snapshot():
    c = Counter("x")
    c.value += 1
    c.inc(4)
    assert c.value == 5
    assert c.snapshot() == {"type": "counter", "value": 5}
    c.reset()
    assert c.value == 0


def test_gauge_direct_and_lazy_source():
    g = Gauge("depth")
    g.set(7)
    assert g.read() == 7
    backing = {"n": 3}
    lazy = Gauge("size", source=lambda: backing["n"])
    assert lazy.read() == 3
    backing["n"] = 9
    assert lazy.snapshot() == {"type": "gauge", "value": 9}


def test_histogram_buckets_count_and_sum():
    h = Histogram("lat", bounds=(0.001, 0.01, 0.1))
    for v in (0.0005, 0.005, 0.005, 0.05, 5.0):
        h.observe(v)
    snap = h.snapshot()
    assert snap["counts"] == [1, 2, 1, 1]    # last bucket = overflow
    assert snap["count"] == 5
    assert snap["sum"] == pytest.approx(5.0605)
    assert snap["bounds"] == [0.001, 0.01, 0.1]


def test_histogram_bounds_must_ascend():
    with pytest.raises(ValueError):
        Histogram("bad", bounds=(0.1, 0.01))


def test_registry_get_or_create_is_idempotent():
    reg = MetricsRegistry()
    a = reg.counter("daemon.n0.published")
    b = reg.counter("daemon.n0.published")
    assert a is b
    assert len(reg) == 1


def test_registry_type_conflict_is_an_error():
    reg = MetricsRegistry()
    reg.counter("x")
    with pytest.raises(ValueError):
        reg.gauge("x")


def test_scope_prefixes_names():
    reg = MetricsRegistry()
    scope = reg.scope("daemon.n0")
    c = scope.counter("published")
    assert c.name == "daemon.n0.published"
    nested = scope.scope("wire")
    assert nested.counter("drops").name == "daemon.n0.wire.drops"
    assert set(reg.names()) == {"daemon.n0.published", "daemon.n0.wire.drops"}


def test_register_adopts_detached_instruments():
    reg = MetricsRegistry()
    detached = Counter()
    detached.value = 3
    reg.register("wan.drops", detached)
    assert reg.get("wan.drops") is detached
    # re-registering the same object is a no-op
    reg.register("wan.drops", detached)
    # a different object under a taken name is a collision
    with pytest.raises(ValueError):
        reg.register("wan.drops", Counter())


def test_drop_prefix_forgets_volatile_families():
    reg = MetricsRegistry()
    reg.counter("reliable.recv[a#0].delivered")
    reg.counter("reliable.recv[b#0].delivered")
    keeper = reg.counter("daemon.n0.published")
    assert reg.drop_prefix("reliable.") == 2
    assert reg.names() == ["daemon.n0.published"]
    # recreating after a drop yields a fresh zeroed instrument
    fresh = reg.counter("reliable.recv[a#0].delivered")
    assert fresh.value == 0
    assert reg.get("daemon.n0.published") is keeper


def test_snapshot_renders_every_instrument():
    reg = MetricsRegistry()
    reg.counter("c").value += 2
    reg.gauge("g").set(1.5)
    reg.histogram("h").observe(0.5)
    snap = reg.snapshot()
    assert snap["c"] == {"type": "counter", "value": 2}
    assert snap["g"]["type"] == "gauge"
    assert snap["h"]["type"] == "histogram"


def test_stub_registry_shares_noop_instruments():
    reg = MetricsRegistry(stub=True)
    a = reg.counter("a")
    b = reg.counter("b")
    assert a is b                 # one shared throwaway
    a.value += 5                  # increments still execute
    g = reg.gauge("g", source=lambda: 1)
    assert g is reg.gauge("other")
    assert reg.histogram("h", bounds=DEFAULT_BUCKETS) is reg.histogram("i")
    assert reg.snapshot() == {}   # nothing registered, nothing rendered
    assert len(reg) == 0


def test_publisher_fires_on_interval_and_stops():
    sim = Simulator(seed=1)
    reg = MetricsRegistry()
    reg.counter("ticks")
    seen = []
    pub = MetricsPublisher(sim, reg, seen.append, interval=0.5)
    sim.run_until(1.8)
    assert pub.snapshots_published == 3
    assert len(seen) == 3
    assert "ticks" in seen[0]
    pub.stop()
    sim.run_until(5.0)
    assert pub.snapshots_published == 3
    assert pub.stopped


def test_publisher_rejects_nonpositive_interval():
    sim = Simulator(seed=1)
    with pytest.raises(ValueError):
        MetricsPublisher(sim, MetricsRegistry(), lambda s: None, interval=0)


def test_sum_counters_matches_suffixes_only():
    snap = {
        "daemon.a.published": {"type": "counter", "value": 3},
        "daemon.b.published": {"type": "counter", "value": 4},
        "daemon.a.depth": {"type": "gauge", "value": 99},
        "daemon.a.delivered": {"type": "counter", "value": 7},
    }
    assert sum_counters(snap, [".published"]) == 7
    assert sum_counters(snap, [".published", ".delivered"]) == 14
    assert sum_counters(snap, [".depth"]) == 0   # gauges never counted
