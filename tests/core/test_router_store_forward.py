"""Store-and-forward routing: guaranteed QoS across the WAN.

Section 3.1 lists "logging messages to non-volatile storage" among the
router's functions.  With ``Router(store_and_forward=True)``:

* the ingress leg's forwarding subscription is durable, so the original
  publisher's guaranteed-delivery ack means "stably logged at the
  router";
* shipments retry across WAN link failures and router crashes until the
  egress leg durably confirms;
* the egress leg republishes with guaranteed QoS, extending the chain to
  durable consumers on the far bus.
"""

import pytest

from repro.core import BusConfig, InformationBus, QoS, Router, WanLink
from repro.objects import (AttributeSpec, DataObject, TypeDescriptor,
                           standard_registry)
from repro.repository import CaptureServer
from repro.sim import CostModel, Simulator


def story_registry():
    reg = standard_registry()
    reg.register(TypeDescriptor(
        "alarm", attributes=[AttributeSpec("n", "int")]))
    return reg


@pytest.fixture
def world():
    sim = Simulator(seed=1)
    config = BusConfig()
    config.advert_interval = 0.4
    plant = InformationBus(cost=CostModel.ideal(), name="plant", sim=sim,
                           config=config)
    hq = InformationBus(cost=CostModel.ideal(), name="hq", sim=sim,
                        config=config)
    plant.add_hosts(3, prefix="p")
    hq.add_hosts(3, prefix="h")
    router = Router(store_and_forward=True, link=WanLink(latency=0.02))
    plant_leg = router.add_leg(plant)
    hq_leg = router.add_leg(hq)
    reg = story_registry()
    publisher = plant.client("p00", "alarms", registry=reg)
    # the far-side durable consumer (the HQ alarm database)
    capture = CaptureServer(hq.client("h00", "alarm_db"), ["alarms.>"])
    sim.run_until(2.0)   # interest propagates
    return (sim, plant, hq, router, plant_leg, hq_leg, publisher, reg,
            capture)


def publish(sim, publisher, reg, values):
    for n in values:
        publisher.publish("alarms.drill",
                          DataObject(reg, "alarm", n=n),
                          qos=QoS.GUARANTEED)
    sim.run_until(sim.now + 4.0)


def test_guaranteed_crosses_the_wan(world):
    (sim, plant, hq, router, plant_leg, hq_leg, publisher, reg,
     capture) = world
    publish(sim, publisher, reg, range(3))
    # the publisher's ledger is clear: the router's durable leg acked
    assert plant.daemon("p00").guaranteed_pending() == []
    # the far-side database stored everything, exactly once
    assert sorted(o.get("n") for o in capture.store.query("alarm")) == \
        [0, 1, 2]
    # and the router's own pending log is clear
    assert plant_leg.sf_pending() == 0


def test_wan_link_failure_is_ridden_out(world):
    (sim, plant, hq, router, plant_leg, hq_leg, publisher, reg,
     capture) = world
    router.link.fail()
    publish(sim, publisher, reg, [7])
    # the publisher is already acked (logged at the router) ...
    assert plant.daemon("p00").guaranteed_pending() == []
    # ... but the shipment is parked, surviving in stable storage
    assert plant_leg.sf_pending() == 1
    assert capture.captured == 0
    assert router.link.messages_dropped > 0
    router.link.restore()
    sim.run_until(sim.now + 3.0)
    assert plant_leg.sf_pending() == 0
    assert capture.store.count("alarm") == 1


def test_router_crash_resumes_from_pending_log(world):
    (sim, plant, hq, router, plant_leg, hq_leg, publisher, reg,
     capture) = world
    router.link.fail()
    publish(sim, publisher, reg, [1, 2])
    assert plant_leg.sf_pending() == 2
    plant_leg.host.crash()
    router.link.restore()
    sim.run_until(sim.now + 2.0)
    assert capture.captured == 0               # router was down
    plant_leg.host.recover()
    sim.run_until(sim.now + 5.0)
    assert plant_leg.sf_pending() == 0
    assert sorted(o.get("n") for o in capture.store.query("alarm")) == \
        [1, 2]


def test_retries_do_not_duplicate(world):
    """A flapping link causes repeated shipments; the egress leg's
    durable dedupe keeps far-side delivery exactly-once."""
    (sim, plant, hq, router, plant_leg, hq_leg, publisher, reg,
     capture) = world
    # flap the link: acks get lost, shipments repeat
    for k in range(6):
        sim.schedule_at(2.0 + k * 0.3,
                        router.link.fail if k % 2 == 0
                        else router.link.restore)
    publish(sim, publisher, reg, range(5))
    router.link.restore()
    sim.run_until(sim.now + 6.0)
    assert plant_leg.sf_pending() == 0
    assert sorted(o.get("n") for o in capture.store.query("alarm")) == \
        [0, 1, 2, 3, 4]
    assert capture.store.count("alarm") == 5   # exactly once each


def test_reliable_messages_skip_the_stable_path(world):
    (sim, plant, hq, router, plant_leg, hq_leg, publisher, reg,
     capture) = world
    before = plant_leg.host.stable.write_count
    publisher.publish("alarms.info", DataObject(reg, "alarm", n=99))
    sim.run_until(sim.now + 3.0)
    assert capture.store.count("alarm") == 1   # forwarded and stored
    # no store-and-forward records were written for reliable traffic
    assert plant_leg.sf_pending() == 0
