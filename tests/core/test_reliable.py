"""Delivery-semantics tests under loss, duplication, crashes, partitions.

Section 2's failure model: the network "may lose, delay, and duplicate
messages, or deliver messages out of order"; nodes are fail-stop and
eventually recover.  Section 3.1 defines what reliable delivery must do
in each case.
"""

from repro.core import BusConfig, InformationBus
from repro.objects import (AttributeSpec, DataObject, TypeDescriptor,
                           standard_registry)
from repro.sim import CostModel


def lossy_cost(loss=0.05, dup=0.0, jitter=0.0):
    cost = CostModel.ideal()
    cost.loss_probability = loss
    cost.duplicate_probability = dup
    cost.reorder_jitter = jitter
    return cost


def story_registry():
    reg = standard_registry()
    reg.register(TypeDescriptor(
        "story", attributes=[AttributeSpec("n", "int")]))
    return reg


def run_stream(bus, count=200, subject="rel.test"):
    reg = story_registry()
    pub = bus.client("node00", "feed", registry=reg)
    received = []
    bus.client("node01", "mon").subscribe(
        "rel.>", lambda s, o, i: received.append(o.get("n")))
    for i in range(count):
        pub.publish(subject, DataObject(reg, "story", n=i))
    bus.settle(5.0)
    return received


def test_exactly_once_in_order_under_loss():
    bus = InformationBus(seed=7, cost=lossy_cost(loss=0.05))
    bus.add_hosts(3)
    received = run_stream(bus, 200)
    assert received == list(range(200))   # every message, once, in order


def test_exactly_once_under_duplication():
    bus = InformationBus(seed=8, cost=lossy_cost(loss=0.0, dup=0.3))
    bus.add_hosts(3)
    received = run_stream(bus, 100)
    assert received == list(range(100))


def test_in_order_under_reordering():
    bus = InformationBus(seed=9, cost=lossy_cost(loss=0.02, jitter=0.004))
    bus.add_hosts(3)
    received = run_stream(bus, 150)
    assert received == list(range(150))


def test_loss_of_final_message_repaired_via_heartbeat():
    """Without heartbeats a lost *last* message would never be NACKed."""
    cost = CostModel.ideal()
    bus = InformationBus(seed=3, cost=cost)
    bus.add_hosts(2)
    reg = story_registry()
    pub = bus.client("node00", "feed", registry=reg)
    received = []
    bus.client("node01", "mon").subscribe(
        "hb.>", lambda s, o, i: received.append(o.get("n")))
    pub.publish("hb.x", DataObject(reg, "story", n=0))
    bus.settle(1.0)
    # force-drop exactly the next publication
    cost.loss_probability = 1.0
    pub.publish("hb.x", DataObject(reg, "story", n=1))
    bus.run_for(0.01)
    cost.loss_probability = 0.0
    bus.run_for(3.0)   # heartbeat reveals the gap; NACK repairs it
    assert received == [0, 1]


def test_at_most_once_when_sender_crashes():
    """A crashed sender cannot repair; receivers skip the gap (no dupes,
    no stall)."""
    cost = CostModel.ideal()
    bus = InformationBus(seed=4, cost=cost)
    bus.add_hosts(2)
    reg = story_registry()
    pub = bus.client("node00", "feed", registry=reg)
    received = []
    bus.client("node01", "mon").subscribe(
        "crash.>", lambda s, o, i: received.append(o.get("n")))
    pub.publish("crash.x", DataObject(reg, "story", n=0))
    bus.settle(0.5)
    cost.loss_probability = 1.0     # message 1 vanishes
    pub.publish("crash.x", DataObject(reg, "story", n=1))
    bus.run_for(0.001)
    cost.loss_probability = 0.0
    pub.publish("crash.x", DataObject(reg, "story", n=2))   # creates the gap
    bus.run_for(0.001)
    bus.crash_host("node00")        # sender gone; NACKs go unanswered
    bus.run_for(10.0)
    assert received == [0, 2]       # 1 lost: at-most-once, order preserved
    stats = bus.daemon("node01").reliable_stats("node00#0")
    assert stats.gaps_skipped == 1
    assert stats.messages_lost == 1


def test_sender_recovery_starts_fresh_session():
    bus = InformationBus(seed=5, cost=CostModel.ideal())
    bus.add_hosts(2)
    reg = story_registry()
    pub = bus.client("node00", "feed", registry=reg)
    received = []
    bus.client("node01", "mon").subscribe(
        "sess.>", lambda s, o, i: received.append((i.session, o.get("n"))))
    pub.publish("sess.x", DataObject(reg, "story", n=0))
    bus.settle(0.5)
    bus.crash_host("node00")
    bus.run_for(0.5)
    bus.recover_host("node00")
    pub.publish("sess.x", DataObject(reg, "story", n=1))
    bus.settle(0.5)
    sessions = [s for s, _ in received]
    assert sessions == ["node00#0", "node00#1"]
    assert [n for _, n in received] == [0, 1]


def test_receiver_crash_loses_messages_not_order():
    bus = InformationBus(seed=6, cost=CostModel.ideal())
    bus.add_hosts(2)
    reg = story_registry()
    pub = bus.client("node00", "feed", registry=reg)
    received = []
    mon = bus.client("node01", "mon")
    mon.subscribe("rx.>", lambda s, o, i: received.append(o.get("n")))
    pub.publish("rx.x", DataObject(reg, "story", n=0))
    bus.settle(0.5)
    bus.crash_host("node01")
    pub.publish("rx.x", DataObject(reg, "story", n=1))   # while down
    bus.settle(0.5)
    bus.recover_host("node01")   # auto_restart re-attaches subscriptions
    pub.publish("rx.x", DataObject(reg, "story", n=2))
    bus.settle(0.5)
    assert received == [0, 2]    # missed 1 while down; at-most-once


def test_partition_and_heal():
    bus = InformationBus(seed=10, cost=lossy_cost(loss=0.01))
    bus.add_hosts(3)
    reg = story_registry()
    pub = bus.client("node00", "feed", registry=reg)
    received = []
    bus.client("node01", "mon").subscribe(
        "part.>", lambda s, o, i: received.append(o.get("n")))
    pub.publish("part.x", DataObject(reg, "story", n=0))
    bus.settle(1.0)
    bus.partition({"node00"}, {"node01", "node02"})
    pub.publish("part.x", DataObject(reg, "story", n=1))
    bus.settle(1.0)
    assert received == [0]
    bus.heal()
    bus.run_for(3.0)
    # short partition: retention still holds message 1; heartbeat-triggered
    # NACK repairs it after healing — "if ... the network does not suffer
    # a long-term partition ... exactly once"
    pub.publish("part.x", DataObject(reg, "story", n=2))
    bus.settle(3.0)
    assert received == [0, 1, 2]


def test_long_partition_degrades_to_at_most_once():
    config = BusConfig()
    config.reliable.retention = 4   # tiny retention: long partitions lose
    bus = InformationBus(seed=11, cost=CostModel.ideal(), config=config)
    bus.add_hosts(2)
    reg = story_registry()
    pub = bus.client("node00", "feed", registry=reg)
    received = []
    bus.client("node01", "mon").subscribe(
        "lp.>", lambda s, o, i: received.append(o.get("n")))
    pub.publish("lp.x", DataObject(reg, "story", n=0))
    bus.settle(1.0)
    bus.partition({"node00"}, {"node01"})
    for n in range(1, 11):   # 10 messages vanish beyond retention
        pub.publish("lp.x", DataObject(reg, "story", n=n))
    bus.settle(1.0)
    bus.heal()
    pub.publish("lp.x", DataObject(reg, "story", n=11))
    bus.settle(15.0)   # enough for the receiver to exhaust NACK patience
    assert received[0] == 0
    assert received[-1] == 11
    assert len(received) < 12            # something was lost
    assert received == sorted(received)  # but order never violated


def test_retransmission_marked_in_info():
    cost = CostModel.ideal()
    bus = InformationBus(seed=12, cost=cost)
    bus.add_hosts(2)
    reg = story_registry()
    pub = bus.client("node00", "feed", registry=reg)
    infos = []
    bus.client("node01", "mon").subscribe(
        "rt.>", lambda s, o, i: infos.append(i))
    pub.publish("rt.x", DataObject(reg, "story", n=0))
    bus.settle(0.5)
    cost.loss_probability = 1.0
    pub.publish("rt.x", DataObject(reg, "story", n=1))
    bus.run_for(0.001)
    cost.loss_probability = 0.0
    pub.publish("rt.x", DataObject(reg, "story", n=2))
    bus.settle(3.0)
    assert [i.seq for i in infos] == [1, 2, 3]
    assert infos[1].retransmitted            # repaired via NACK
    assert bus.daemon("node00").sender_retransmissions() >= 1


def test_loss_of_first_message_is_recovered():
    """The very first message of a session drops on the wire; receivers
    that predate the session must repair it (exactly-once under normal
    operation), not misread it as pre-join history."""
    cost = CostModel.ideal()
    bus = InformationBus(seed=13, cost=cost)
    bus.add_hosts(2)
    reg = story_registry()
    pub = bus.client("node00", "feed", registry=reg)
    received = []
    bus.client("node01", "mon").subscribe(
        "head.>", lambda s, o, i: received.append(o.get("n")))
    bus.run_for(0.1)
    cost.loss_probability = 1.0     # the session's first message vanishes
    pub.publish("head.x", DataObject(reg, "story", n=0))
    bus.run_for(0.001)
    cost.loss_probability = 0.0
    pub.publish("head.x", DataObject(reg, "story", n=1))
    bus.settle(3.0)
    assert received == [0, 1]


def test_late_joining_daemon_does_not_replay_history():
    """A host added after traffic started baselines at current seq: a
    'new subscriber' there sees only new objects."""
    bus = InformationBus(seed=14, cost=CostModel.ideal())
    bus.add_hosts(2)
    reg = story_registry()
    pub = bus.client("node00", "feed", registry=reg)
    pub.publish("late.x", DataObject(reg, "story", n=0))
    bus.settle(1.0)
    bus.add_host("latecomer")      # daemon born after the session
    received = []
    bus.client("latecomer", "mon").subscribe(
        "late.>", lambda s, o, i: received.append(o.get("n")))
    bus.run_for(1.0)
    pub.publish("late.x", DataObject(reg, "story", n=1))
    bus.settle(2.0)
    assert received == [1]


def test_time_based_retention_expires_old_messages():
    from repro.core import Envelope, ReliableSender
    from repro.sim import Simulator
    sim = Simulator()
    config = BusConfig().reliable
    config.retention_seconds = 1.0
    sender = ReliableSender("h#0", config, now=lambda: sim.now)

    def publish():
        sender.stamp(Envelope("t.x", "app", "", 0, b""))

    publish()                       # seq 1 at t=0
    sim.run_until(0.5)
    publish()                       # seq 2 at t=0.5
    sim.run_until(1.2)
    publish()                       # seq 3 at t=1.2; seq 1 now expired
    assert [e.seq for e in sender.repair(1, 3)] == [2, 3]
    assert sender.retained() == 2
    sim.run_until(5.0)
    assert sender.repair(1, 3) == [] or \
        [e.seq for e in sender.repair(1, 3)] == []   # all expired


def test_time_retention_turns_old_gaps_into_loss():
    """With a short reliability window, messages lost on the wire and
    not repaired within the window are gone — at-most-once, by policy."""
    config = BusConfig()
    config.reliable.retention_seconds = 0.2
    config.reliable.nack_delay = 0.3      # receiver asks too late
    config.reliable.nack_max = 3
    cost = CostModel.ideal()
    bus = InformationBus(seed=21, cost=cost, config=config)
    bus.add_hosts(2)
    reg = story_registry()
    pub = bus.client("node00", "feed", registry=reg)
    received = []
    bus.client("node01", "mon").subscribe(
        "tr.>", lambda s, o, i: received.append(o.get("n")))
    pub.publish("tr.x", DataObject(reg, "story", n=0))
    bus.settle(1.0)
    cost.loss_probability = 1.0
    pub.publish("tr.x", DataObject(reg, "story", n=1))
    bus.run_for(0.001)
    cost.loss_probability = 0.0
    pub.publish("tr.x", DataObject(reg, "story", n=2))
    bus.settle(10.0)
    assert received == [0, 2]     # 1 aged out of retention before repair
