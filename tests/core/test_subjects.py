"""Tests for subject validation, wildcard matching, and the trie."""

import pytest

from repro.core import (BadSubjectError, SubjectTrie, is_valid_pattern,
                        is_valid_subject, subject_matches, validate_pattern,
                        validate_subject)


# ----------------------------------------------------------------------
# validation
# ----------------------------------------------------------------------

def test_paper_example_subject_is_valid():
    assert validate_subject("fab5.cc.litho8.thick") == \
        ["fab5", "cc", "litho8", "thick"]


@pytest.mark.parametrize("bad", ["", ".", "a..b", ".a", "a.", "a b",
                                 "news.*", "news.>", "a.#.b", "ü.x"])
def test_invalid_subjects(bad):
    assert not is_valid_subject(bad)
    with pytest.raises(BadSubjectError):
        validate_subject(bad)


@pytest.mark.parametrize("good", ["a", "a.b", "news.equity.gmc",
                                  "x_1.y-2.Z3"])
def test_valid_subjects(good):
    assert is_valid_subject(good)


@pytest.mark.parametrize("good", ["*", ">", "a.*", "a.>", "*.b", "a.*.c",
                                  "news.equity.*"])
def test_valid_patterns(good):
    assert is_valid_pattern(good)


@pytest.mark.parametrize("bad", ["", ">.a", "a.>.b", "a..b", "a.**"])
def test_invalid_patterns(bad):
    assert not is_valid_pattern(bad)
    with pytest.raises(BadSubjectError):
        validate_pattern(bad)


def test_too_deep_subject_rejected():
    deep = ".".join(["x"] * 33)
    with pytest.raises(BadSubjectError):
        validate_subject(deep)


# ----------------------------------------------------------------------
# matching semantics
# ----------------------------------------------------------------------

@pytest.mark.parametrize("pattern,subject,expected", [
    ("news.equity.gmc", "news.equity.gmc", True),
    ("news.equity.gmc", "news.equity.ibm", False),
    ("news.equity.*", "news.equity.gmc", True),
    ("news.equity.*", "news.equity", False),
    ("news.equity.*", "news.equity.gmc.update", False),
    ("news.*.gmc", "news.equity.gmc", True),
    ("news.*.gmc", "news.bond.gmc", True),
    ("news.*.gmc", "news.gmc", False),
    ("*", "news", True),
    ("*", "news.equity", False),
    ("news.>", "news.equity", True),
    ("news.>", "news.equity.gmc.update", True),
    ("news.>", "news", False),
    (">", "anything", True),
    (">", "a.b.c", True),
    ("fab5.cc.*.thick", "fab5.cc.litho8.thick", True),
])
def test_subject_matches(pattern, subject, expected):
    assert subject_matches(pattern, subject) is expected


# ----------------------------------------------------------------------
# the trie
# ----------------------------------------------------------------------

def test_trie_exact_match():
    trie = SubjectTrie()
    trie.insert("news.equity.gmc", "A")
    trie.insert("news.equity.ibm", "B")
    assert trie.match("news.equity.gmc") == {"A"}
    assert trie.match("news.equity.ibm") == {"B"}
    assert trie.match("news.equity.xom") == set()


def test_trie_star_and_tail():
    trie = SubjectTrie()
    trie.insert("news.equity.*", "star")
    trie.insert("news.>", "tail")
    trie.insert("news.equity.gmc", "exact")
    assert trie.match("news.equity.gmc") == {"star", "tail", "exact"}
    assert trie.match("news.equity.gmc.update") == {"tail"}
    assert trie.match("news.bond.us") == {"tail"}
    assert trie.match("news") == set()   # '>' needs at least one more


def test_trie_multiple_values_same_pattern():
    trie = SubjectTrie()
    trie.insert("a.b", "x")
    trie.insert("a.b", "y")
    assert trie.match("a.b") == {"x", "y"}
    assert len(trie) == 2


def test_trie_duplicate_insert_is_noop():
    trie = SubjectTrie()
    trie.insert("a.b", "x")
    trie.insert("a.b", "x")
    assert len(trie) == 1


def test_trie_remove():
    trie = SubjectTrie()
    trie.insert("a.*", "x")
    trie.insert("a.>", "x")
    assert trie.remove("a.*", "x") is True
    assert trie.match("a.b") == {"x"}
    assert trie.remove("a.>", "x") is True
    assert trie.match("a.b") == set()
    assert trie.remove("a.>", "x") is False
    assert trie.remove("never.inserted", "x") is False
    assert len(trie) == 0


def test_trie_prunes_empty_branches():
    trie = SubjectTrie()
    trie.insert("a.b.c.d", "x")
    trie.remove("a.b.c.d", "x")
    assert trie._root.empty()


def test_trie_star_only_matches_one_level():
    trie = SubjectTrie()
    trie.insert("*.b", "x")
    assert trie.match("a.b") == {"x"}
    assert trie.match("a.c") == set()
    assert trie.match("a.b.c") == set()


def test_trie_patterns_for():
    trie = SubjectTrie()
    trie.insert("a.*", "x")
    trie.insert("a.>", "x")
    trie.insert("b.c", "x")
    trie.insert("b.c", "y")
    assert trie.patterns_for("x") == ["a.*", "a.>", "b.c"]
    assert trie.patterns_for("y") == ["b.c"]


def test_trie_rejects_bad_patterns():
    trie = SubjectTrie()
    with pytest.raises(BadSubjectError):
        trie.insert("a..b", "x")
    with pytest.raises(BadSubjectError):
        trie.match("a.*")   # match takes concrete subjects only


def test_trie_scales_independent_of_subscription_count():
    """The Figure 8 property: matching cost depends on subject depth, not
    on how many patterns are registered (validated functionally here,
    timed in benchmarks/test_fig8_subjects.py)."""
    trie = SubjectTrie()
    for i in range(10_000):
        trie.insert(f"bench.sub{i:05d}.data", i)
    assert trie.match("bench.sub04567.data") == {4567}
    assert trie.matches_anything("bench.sub00000.data")
    assert not trie.matches_anything("bench.nope.data")


# ----------------------------------------------------------------------
# match memoization
# ----------------------------------------------------------------------

def test_memo_repeated_match_returns_same_object():
    trie = SubjectTrie()
    trie.insert("a.>", "x")
    first = trie.match("a.b")
    assert trie.match("a.b") is first   # one shared frozen result


def test_memo_invalidated_by_insert():
    """A subscribe lands on the very next match — no stale memo."""
    trie = SubjectTrie()
    trie.insert("a.>", "x")
    assert trie.match("a.b") == {"x"}
    trie.insert("a.b", "y")
    assert trie.match("a.b") == {"x", "y"}


def test_memo_invalidated_by_remove():
    trie = SubjectTrie()
    trie.insert("a.>", "x")
    trie.insert("a.*", "y")
    assert trie.match("a.b") == {"x", "y"}
    trie.remove("a.*", "y")
    assert trie.match("a.b") == {"x"}


def test_memo_noop_insert_keeps_cache_valid():
    """Duplicate inserts and failed removes change nothing, so they must
    not count as generations (the memo survives them)."""
    trie = SubjectTrie()
    trie.insert("a.b", "x")
    trie.match("a.b")
    generation = trie._generation
    trie.insert("a.b", "x")              # duplicate: no-op
    trie.remove("a.b", "never-there")    # miss: no-op
    assert trie._generation == generation


def test_memo_capacity_bound():
    trie = SubjectTrie(memo_capacity=4)
    trie.insert("s.>", "x")
    for i in range(100):
        trie.match(f"s.{i}")
    assert len(trie._memo) <= 4


def test_memo_capacity_zero_disables():
    trie = SubjectTrie(memo_capacity=0)
    trie.insert("a.>", "x")
    assert trie.match("a.b") == {"x"}
    assert trie.match("a.b") == {"x"}
    assert trie._memo == {}


def test_memo_and_uncached_agree():
    """Property check: cached and cache-free tries give identical answers
    across a mixed pattern set, including admin subjects."""
    patterns = ["a.>", "a.*", "a.b", "a.*.c", "*.b", ">", "_sys.control",
                "news.equity.*", "news.>"]
    subjects = ["a.b", "a.c", "a.b.c", "x.b", "news.equity.gmc",
                "news.bond.us", "_sys.control", "_sys.other", "zzz"]
    cached = SubjectTrie()
    plain = SubjectTrie(memo_capacity=0)
    for i, pattern in enumerate(patterns):
        cached.insert(pattern, i)
        plain.insert(pattern, i)
    for subject in subjects + subjects:   # repeats exercise memo hits
        assert cached.match(subject) == plain.match(subject), subject
        assert (cached.matches_anything(subject)
                == plain.matches_anything(subject)), subject


def test_matches_anything_consistent_with_match():
    trie = SubjectTrie()
    trie.insert("fab5.>", "tail")
    trie.insert("*.cc", "star")
    trie.insert("_admin.cmd", "adm")
    for subject in ["fab5.cc", "fab5.cc.litho8", "x.cc", "x.dd",
                    "_admin.cmd", "_admin.other", "fab5"]:
        assert trie.matches_anything(subject) == bool(trie.match(subject))
