"""Wire header compression at the codec level: string tables, the
self-contained frame rule, and per-receiver decode-memo honesty.

A publishing daemon's :class:`StringTable` assigns dense ids to repeated
header strings; receivers learn ``id -> string`` per session from the
inline definition sections.  The invariants under test:

* a DATA frame defines every id *first used* in it — so the first frame
  of a session decodes with zero prior state;
* later frames reference without redefining — smaller, but unresolvable
  to a receiver that missed the defining frame (a typed, repairable
  failure, never a crash);
* RETRANS frames define **all** ids they reference — repairs always
  decode;
* the definitions of a CRC-valid frame are learned even when the frame
  itself fails to resolve;
* the shared decode memo replays those table effects per receiver, so a
  memo hit and a fresh parse are indistinguishable.
"""

import random

import pytest

from repro.core import Envelope, Packet, PacketKind, QoS
from repro.core import wire
from repro.core.wire import (CorruptFrame, StringTable, UnresolvedStringId,
                             decode_packet, encode_packet)
from repro.sim.framing import flip_random_bit


def make_envelope(seq, subject="news.equity.gmc", session="node00#0",
                  **kw):
    return Envelope(subject=subject, sender="node00.pub", session=session,
                    seq=seq, payload=b"payload", publish_time=0.25,
                    envelope_id=seq, **kw)


def data_frame(table, seqs, subject="news.equity.gmc", session="node00#0"):
    envelopes = [make_envelope(seq, subject, session) for seq in seqs]
    return encode_packet(Packet(PacketKind.DATA, session, envelopes,
                                session_start=0.0), table)


class TestStringTable:
    def test_ids_are_dense_and_stable(self):
        table = StringTable()
        assert table.intern("alpha") == (0, True)
        assert table.intern("beta") == (1, True)
        assert table.intern("alpha") == (0, False)
        assert len(table) == 2
        assert table.strings == ["alpha", "beta"]

    def test_compressed_round_trip_equals_plain(self):
        table = StringTable()
        envelope = make_envelope(1, qos=QoS.GUARANTEED,
                                 ledger_id="node00/g/1")
        envelope.via = ("wan-router",)
        packet = Packet(PacketKind.DATA, "node00#0", [envelope],
                        session_start=0.5)
        assert decode_packet(encode_packet(packet, table)) == \
            decode_packet(encode_packet(packet))

    def test_steady_state_frames_are_smaller(self):
        table = StringTable()
        first = data_frame(table, [1])
        second = data_frame(table, [2])
        plain = len(encode_packet(Packet(
            PacketKind.DATA, "node00#0", [make_envelope(2)],
            session_start=0.0)))
        # the first frame pays for its definitions; from then on every
        # repeated header string costs one or two bytes
        assert len(second) < len(first)
        assert len(second) < plain

    def test_encoding_is_deterministic(self):
        t1, t2 = StringTable(), StringTable()
        assert data_frame(t1, [1]) == data_frame(t2, [1])


class TestSelfContainedFrames:
    def test_first_frame_decodes_with_zero_state(self):
        table = StringTable()
        packet = decode_packet(data_frame(table, [1]))
        assert packet.envelopes[0].subject == "news.equity.gmc"
        assert packet.envelopes[0].session == "node00#0"

    def test_later_frame_alone_is_unresolvable(self):
        table = StringTable()
        data_frame(table, [1])                    # defines the ids
        second = data_frame(table, [2, 3])        # references only
        with pytest.raises(UnresolvedStringId) as exc:
            decode_packet(second)
        err = exc.value
        assert err.session == "node00#0"
        assert (err.first_seq, err.last_seq) == (2, 3)
        assert err.session_start == 0.0
        assert err.missing                       # the ids it lacked
        assert isinstance(err, CorruptFrame)     # drop-and-repair family

    def test_receiver_table_makes_later_frames_resolvable(self):
        table = StringTable()
        first = data_frame(table, [1])
        second = data_frame(table, [2])
        tables = {}
        decode_packet(first, tables=tables)
        packet = decode_packet(second, tables=tables)
        assert packet.envelopes[0].seq == 2
        assert packet.envelopes[0].subject == "news.equity.gmc"

    def test_definitions_survive_a_failed_resolution(self):
        """A CRC-valid frame teaches its defs even when it can't be
        resolved — that is what makes the eventual repair decodable."""
        table = StringTable()
        data_frame(table, [1])                               # lost frame
        second = data_frame(table, [2], subject="news.bond.t30")
        tables = {}
        with pytest.raises(UnresolvedStringId):
            decode_packet(second, tables=tables)             # new subject
        learned = set(tables["node00#0"].values())
        assert "news.bond.t30" in learned                    # def learned
        assert "news.equity.gmc" not in learned              # still unknown

    def test_retrans_defines_everything_it_references(self):
        """A NACK repair must decode at a receiver with zero state."""
        table = StringTable()
        data_frame(table, [1])                    # the defining DATA frame
        envelope = make_envelope(1)
        repair = encode_packet(Packet(PacketKind.RETRANS, "node00#0",
                                      [envelope], session_start=0.0), table)
        packet = decode_packet(repair)            # no tables at all
        assert packet.kind is PacketKind.RETRANS
        assert packet.envelopes[0].subject == "news.equity.gmc"

    def test_control_packets_are_never_compressed(self):
        table = StringTable()
        for packet in (
                Packet(PacketKind.HEARTBEAT, "node00#0", last_seq=9),
                Packet(PacketKind.NACK, "node00#0", nack_range=(1, 4)),
                Packet(PacketKind.ACK, "node00#0", ack_ledger_id="x/1",
                       ack_consumer="node01")):
            assert encode_packet(packet, table) == encode_packet(packet)
        assert len(table) == 0                    # nothing interned

    def test_corrupted_compressed_frame_still_crc_fails(self):
        table = StringTable()
        data = data_frame(table, [1])
        for seed in range(64):
            flipped = flip_random_bit(data, random.Random(seed))
            with pytest.raises(CorruptFrame):
                decode_packet(flipped, tables={})


class TestEncodeCache:
    def test_compressed_encoding_computed_once(self):
        table = StringTable()
        envelope = make_envelope(1)
        packet = Packet(PacketKind.DATA, "node00#0", [envelope],
                        session_start=0.0)
        first = encode_packet(packet, table)
        assert encode_packet(packet, table) == first
        cached = envelope._wire_cache_z
        encode_packet(packet, table)
        assert envelope._wire_cache_z is cached   # no re-marshal

    def test_cache_is_table_scoped(self):
        """A router republishes under its own daemon's table: the cached
        compressed body from another table must never be reused."""
        envelope = make_envelope(1)
        t1, t2 = StringTable(), StringTable()
        p = Packet(PacketKind.DATA, "node00#0", [envelope],
                   session_start=0.0)
        encode_packet(p, t1)
        t2.intern("unrelated-string-shifting-ids")
        frame2 = encode_packet(p, t2)
        decoded = decode_packet(frame2)
        assert decoded.envelopes[0].subject == "news.equity.gmc"

    def test_restamped_envelope_invalidates_cache(self):
        table = StringTable()
        envelope = make_envelope(1)
        p = Packet(PacketKind.DATA, "node00#0", [envelope],
                   session_start=0.0)
        tables = {}
        decode_packet(encode_packet(p, table), tables=tables)
        envelope.seq = 2          # re-stamped: the cached body is stale
        assert decode_packet(encode_packet(p, table),
                             tables=tables).envelopes[0].seq == 2


class TestDecodeMemoHonesty:
    def test_memo_hit_replays_defs_into_receiver_table(self):
        table = StringTable()
        first = data_frame(table, [1])
        a, b = {}, {}
        decode_packet(first, tables=a)            # fresh parse
        decode_packet(first, tables=b)            # memo hit
        assert wire.decode_memo_stats()["hits"] == 1
        assert b == a and b["node00#0"]           # B learned the same defs

    def test_memo_hit_still_unresolvable_for_cold_receiver(self):
        """Receiver A heard the defining frame; receiver B did not.  The
        shared memo must not leak A's resolution to B."""
        table = StringTable()
        first = data_frame(table, [1])
        second = data_frame(table, [2])
        a, b = {}, {}
        decode_packet(first, tables=a)
        decode_packet(second, tables=a)           # A resolves; memo primed
        with pytest.raises(UnresolvedStringId) as exc:
            decode_packet(second, tables=b)       # memo hit, B still cold
        assert (exc.value.first_seq, exc.value.last_seq) == (2, 2)
        # after hearing the defining frame (e.g. via repair), B resolves
        decode_packet(first, tables=b)
        packet = decode_packet(second, tables=b)
        assert packet.envelopes[0].subject == "news.equity.gmc"

    def test_conflicting_table_bypasses_memo(self):
        """Two simulations can produce byte-identical frames from
        sessions with colliding names but different tables; a value
        mismatch must bypass the memo and parse fresh against the
        receiver's own table, not serve the first parser's strings."""
        table = StringTable()
        data_frame(table, [1])
        second = data_frame(table, [2])
        a = {}
        decode_packet(data_frame(StringTable(), [1]), tables=a)  # same bytes
        served = decode_packet(second, tables=a)  # primes memo with needs
        # a receiver whose table maps the same ids to different strings
        conflicting = {"node00#0": {i: f"other-{i}" for i in range(8)}}
        packet = decode_packet(second, tables=conflicting)
        assert packet is not served               # not memo-served
        # resolved against the receiver's own table, not A's
        assert packet.envelopes[0].subject != served.envelopes[0].subject
        assert packet.envelopes[0].subject.startswith("other-")
        # and A itself still gets its correct resolution from the memo
        assert decode_packet(second, tables=a) is served

    def test_memo_disabled_still_resolves(self):
        wire.configure_decode_memo(0)
        table = StringTable()
        first, second = data_frame(table, [1]), data_frame(table, [2])
        tables = {}
        decode_packet(first, tables=tables)
        assert decode_packet(second,
                             tables=tables).envelopes[0].seq == 2


class TestInterning:
    def test_header_strings_are_interned(self):
        """Subject-match memo and per-app lanes key on identical
        objects: two decodes of the same header yield the same str."""
        table = StringTable()
        first = data_frame(table, [1])
        wire.configure_decode_memo(0)             # force two real parses
        p1 = decode_packet(first, tables={})
        p2 = decode_packet(first, tables={})
        assert p1.envelopes[0].subject is p2.envelopes[0].subject
        assert p1.session is p2.session

    def test_table_resolution_returns_interned_string(self):
        table = StringTable()
        wire.configure_decode_memo(0)
        first, second = data_frame(table, [1]), data_frame(table, [2])
        tables = {}
        p1 = decode_packet(first, tables=tables)
        p2 = decode_packet(second, tables=tables)
        assert p1.envelopes[0].subject is p2.envelopes[0].subject
