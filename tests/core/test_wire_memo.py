"""The broadcast decode memo: shared parses, byte-honest rejection.

One broadcast frame is decoded by every daemon on the segment; the memo
lets them share a single parse, keyed by the *exact frame bytes*.  A
receiver whose copy arrived with a bit flipped therefore never hits the
cache — its bytes hash differently — and the CRC still rejects it.
"""

import pytest

from repro.core import (CorruptFrame, Envelope, Packet, PacketKind,
                        decode_packet, encode_packet)
from repro.core import wire


@pytest.fixture(autouse=True)
def reset_memo():
    wire.configure_decode_memo()
    yield
    wire.configure_decode_memo()


def make_frame(seq=1, subject="news.equity.gmc"):
    envelope = Envelope(subject=subject, sender="node00.pub",
                        session="node00#0", seq=seq, payload=b"payload",
                        publish_time=0.5)
    return encode_packet(Packet(PacketKind.DATA, "node00#0", [envelope],
                                session_start=0.0))


def test_repeat_decode_shares_one_parse():
    data = make_frame()
    first = decode_packet(data)
    second = decode_packet(data)
    assert second is first            # N receivers, one parse
    stats = wire.decode_memo_stats()
    assert stats["misses"] == 1 and stats["hits"] == 1


def test_decoded_packet_is_correct_on_hit():
    data = make_frame(seq=7, subject="a.b.c")
    decode_packet(data)
    packet = decode_packet(data)      # served from the memo
    assert packet.kind is PacketKind.DATA
    assert [e.seq for e in packet.envelopes] == [7]
    assert packet.envelopes[0].subject == "a.b.c"
    assert packet.envelopes[0].payload == b"payload"


def test_every_corrupted_copy_still_raises():
    """Bit-flipped copies hash to different keys: the memo can never
    serve a good parse for a receiver whose copy is damaged."""
    data = make_frame()
    decode_packet(data)               # prime the memo with the clean frame
    for bit in range(8 * len(data)):
        corrupted = bytearray(data)
        corrupted[bit // 8] ^= 1 << (bit % 8)
        with pytest.raises(CorruptFrame):
            decode_packet(bytes(corrupted))
    # and the clean frame still decodes
    assert decode_packet(data).envelopes[0].seq == 1


def test_failed_decodes_are_not_cached():
    corrupted = bytearray(make_frame())
    corrupted[-1] ^= 0x01             # break the CRC trailer
    corrupted = bytes(corrupted)
    for _ in range(3):
        with pytest.raises(CorruptFrame):
            decode_packet(corrupted)
    assert wire.decode_memo_stats()["size"] == 0


def test_memo_is_lru_bounded():
    wire.configure_decode_memo(capacity=8)
    frames = [make_frame(seq=i + 1) for i in range(20)]
    for data in frames:
        decode_packet(data)
    stats = wire.decode_memo_stats()
    assert stats["size"] <= 8
    # the most recent frame is retained, the oldest evicted
    decode_packet(frames[-1])
    assert wire.decode_memo_stats()["hits"] == 1
    decode_packet(frames[0])
    assert wire.decode_memo_stats()["misses"] == 21  # re-parsed, not hit


def test_configure_zero_disables():
    wire.configure_decode_memo(0)
    data = make_frame()
    first = decode_packet(data)
    second = decode_packet(data)
    assert first is not second        # every receiver parses for itself
    assert first.envelopes[0].payload == second.envelopes[0].payload
    stats = wire.decode_memo_stats()
    assert stats["size"] == stats["hits"] == stats["misses"] == 0


def test_configure_rejects_negative_capacity():
    with pytest.raises(ValueError):
        wire.configure_decode_memo(-1)
