"""Unit tests for envelopes, packets, and size accounting."""

from repro.core import (ENVELOPE_HEADER, Envelope, PACKET_HEADER, Packet,
                        PacketKind, QoS)


def envelope(subject="a.b", payload=b"x" * 10):
    return Envelope(subject=subject, sender="h.app", session="h#0", seq=1,
                    payload=payload)


def test_envelope_size_accounting():
    e = envelope(subject="news.equity.gmc", payload=b"x" * 100)
    assert e.size == ENVELOPE_HEADER + len("news.equity.gmc") + 100


def test_packet_size_sums_envelopes():
    envelopes = [envelope(), envelope(subject="c.d", payload=b"y" * 20)]
    packet = Packet(PacketKind.DATA, "h#0", envelopes)
    assert packet.size == PACKET_HEADER + sum(e.size for e in envelopes)


def test_empty_packet_is_header_only():
    packet = Packet(PacketKind.HEARTBEAT, "h#0", last_seq=7)
    assert packet.size == PACKET_HEADER
    assert packet.last_seq == 7


def test_envelope_defaults():
    e = envelope()
    assert e.qos is QoS.RELIABLE
    assert e.ledger_id is None
    assert e.via == ()
    assert e.envelope_id > 0


def test_envelope_ids_are_unique():
    assert envelope().envelope_id != envelope().envelope_id


def test_message_info_latency():
    from repro.core import MessageInfo
    info = MessageInfo(subject="a.b", sender="x", session="h#0", seq=1,
                       qos=QoS.RELIABLE, publish_time=1.0,
                       deliver_time=1.25, size=10)
    assert info.latency == 0.25
    assert info.via == ()
