"""Unit tests for envelopes, packets, and measured size accounting."""

from repro.core import (Envelope, Packet, PacketKind, QoS, encode_envelope,
                        encode_packet)
from repro.sim.framing import FRAME_OVERHEAD


def envelope(subject="a.b", payload=b"x" * 10):
    return Envelope(subject=subject, sender="h.app", session="h#0", seq=1,
                    payload=payload)


def test_envelope_size_is_encoded_length():
    e = envelope(subject="news.equity.gmc", payload=b"x" * 100)
    assert e.size == len(encode_envelope(e))


def test_envelope_size_grows_with_payload_and_subject():
    small = envelope(subject="a.b", payload=b"x" * 10)
    bigger_payload = envelope(subject="a.b", payload=b"x" * 110)
    longer_subject = envelope(subject="a.b.much.longer", payload=b"x" * 10)
    assert bigger_payload.size == small.size + 100
    assert longer_subject.size == small.size + len(".much.longer")


def test_packet_size_is_frame_length():
    envelopes = [envelope(), envelope(subject="c.d", payload=b"y" * 20)]
    packet = Packet(PacketKind.DATA, "h#0", envelopes)
    assert packet.size == len(encode_packet(packet))
    assert packet.size >= sum(e.size for e in envelopes) + FRAME_OVERHEAD


def test_empty_packet_has_framing_only():
    packet = Packet(PacketKind.HEARTBEAT, "h#0", last_seq=7)
    assert packet.size == len(encode_packet(packet))
    assert packet.size < 64   # headers, not payload
    assert packet.last_seq == 7


def test_envelope_defaults():
    e = envelope()
    assert e.qos is QoS.RELIABLE
    assert e.ledger_id is None
    assert e.via == ()
    assert e.envelope_id == 0        # unstamped until a daemon sends it


def test_envelope_ids_stamped_per_sender():
    # ids come from the publishing daemon's own counter, not a process
    # global: a fresh sender always starts at 1, so same-seed runs emit
    # byte-identical frames no matter what ran earlier in the process
    from repro.core import BusConfig, ReliableConfig
    from repro.core.reliable import ReliableSender
    first = ReliableSender("h#0", BusConfig().reliable)
    ids = [first.stamp(envelope()).envelope_id for _ in range(3)]
    assert ids == [1, 2, 3]
    again = ReliableSender("h#1", ReliableConfig())
    assert again.stamp(envelope()).envelope_id == 1


def test_message_info_latency():
    from repro.core import MessageInfo
    info = MessageInfo(subject="a.b", sender="x", session="h#0", seq=1,
                       qos=QoS.RELIABLE, publish_time=1.0,
                       deliver_time=1.25, size=10)
    assert info.latency == 0.25
    assert info.via == ()
