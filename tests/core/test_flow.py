"""Unit tests for the shared flow-control layer (core/flow.py)."""

import pytest

from repro.core.flow import (Admission, BoundedBuffer, BoundedQueue,
                             FlowConfig, POLICY_BLOCK, POLICY_DROP_NEWEST,
                             POLICY_DROP_OLDEST, PublishReceipt)
from repro.sim.trace import Tracer


# ----------------------------------------------------------------------
# BoundedQueue basics
# ----------------------------------------------------------------------
def test_accept_until_full_then_policy_applies():
    q = BoundedQueue("q", capacity=2, policy=POLICY_BLOCK)
    assert q.offer("a") is Admission.ACCEPTED
    assert q.offer("b") is Admission.ACCEPTED
    assert q.full
    assert q.offer("c") is Admission.DEFERRED
    assert list(q.items()) == ["a", "b"]


def test_drop_newest_rejects_incoming():
    q = BoundedQueue("q", capacity=1, policy=POLICY_DROP_NEWEST)
    q.offer("a")
    assert q.offer("b") is Admission.DROPPED
    assert q.take() == "a"
    assert q.stats.dropped_newest == 1


def test_drop_oldest_evicts_head():
    evicted = []
    q = BoundedQueue("q", capacity=2, policy=POLICY_DROP_OLDEST,
                     on_evict=evicted.append)
    q.offer("a")
    q.offer("b")
    assert q.offer("c") is Admission.ACCEPTED
    assert list(q.items()) == ["b", "c"]
    assert evicted == ["a"]
    assert q.stats.dropped_oldest == 1


def test_no_shed_forces_defer_even_on_drop_policies():
    for policy in (POLICY_DROP_NEWEST, POLICY_DROP_OLDEST):
        q = BoundedQueue("q", capacity=1, policy=policy)
        q.offer("a")
        assert q.offer("g", no_shed=True) is Admission.DEFERRED
        assert q.stats.dropped == 0
        assert q.take() == "a"


def test_evict_filter_protects_items():
    # guaranteed-style items (here: ints < 0) may never be evicted
    q = BoundedQueue("q", capacity=2, policy=POLICY_DROP_OLDEST,
                     evict_filter=lambda item: item >= 0)
    q.offer(-1)
    q.offer(5)
    # oldest evictable is 5, not -1
    assert q.offer(7) is Admission.ACCEPTED
    assert list(q.items()) == [-1, 7]
    # nothing evictable left beside the protected head -> defer
    q2 = BoundedQueue("q2", capacity=1, policy=POLICY_DROP_OLDEST,
                      evict_filter=lambda item: False)
    q2.offer(-1)
    assert q2.offer(9) is Admission.DEFERRED


def test_admission_truthiness():
    assert Admission.ACCEPTED
    assert not Admission.DEFERRED
    assert not Admission.DROPPED


def test_invalid_policy_and_capacity_rejected():
    with pytest.raises(ValueError):
        BoundedQueue("q", capacity=0)
    with pytest.raises(ValueError):
        BoundedQueue("q", capacity=1, policy="banana")
    with pytest.raises(ValueError):
        FlowConfig(publish_policy="banana")


# ----------------------------------------------------------------------
# stats and tracing
# ----------------------------------------------------------------------
def test_stats_counters_and_high_watermark():
    q = BoundedQueue("q", capacity=3, policy=POLICY_DROP_NEWEST)
    for item in range(3):
        q.offer(item)
    q.offer(99)           # dropped
    q.take()
    q.drain()
    s = q.stats
    assert s.offered == 4
    assert s.accepted == 3
    assert s.dropped == 1
    assert s.drained == 3
    assert s.high_watermark == 3
    assert s.depth == 0
    snap = s.snapshot()
    assert snap["name"] == "q"
    assert snap["dropped"] == 1
    assert snap["high_watermark"] == 3


def test_trace_events_emitted():
    tracer = Tracer(enabled=True)
    clock = [0.0]
    q = BoundedQueue("q", capacity=1, policy=POLICY_DROP_NEWEST,
                     tracer=tracer, now=lambda: clock[0])
    q.offer("a")
    q.offer("b")                       # flow.drop
    q.offer("g", no_shed=True)         # flow.defer
    q.take()                           # flow.credit (pressured, drained)
    counts = tracer.category_counts("flow.")
    assert counts == {"flow.drop": 1, "flow.defer": 1, "flow.credit": 1}
    assert tracer.select("flow.drop")[0]["queue"] == "q"


# ----------------------------------------------------------------------
# credits (backpressure relief)
# ----------------------------------------------------------------------
def test_credit_fires_once_when_drained_to_resume_at():
    fired = []
    q = BoundedQueue("q", capacity=4, policy=POLICY_BLOCK, resume_at=2)
    q.on_credit(lambda: fired.append(len(q)))
    for item in range(4):
        q.offer(item)
    assert not fired                   # full but nobody pushed back yet
    assert q.offer(99) is Admission.DEFERRED
    assert q.pressured
    q.take()                           # depth 3 > resume_at
    assert not fired
    q.take()                           # depth 2 == resume_at -> credit
    assert fired == [2]
    assert not q.pressured
    q.take()                           # no further credits until re-pressured
    assert fired == [2]
    assert q.stats.credits == 1


def test_clear_does_not_fire_credits():
    fired = []
    q = BoundedQueue("q", capacity=1)
    q.on_credit(lambda: fired.append(1))
    q.offer("a")
    q.offer("b")       # deferred -> pressured
    assert q.clear() == 1
    assert not fired
    assert not q.pressured


# ----------------------------------------------------------------------
# BoundedBuffer (keyed flavour)
# ----------------------------------------------------------------------
def test_buffer_insert_get_pop_and_policies():
    b = BoundedBuffer("b", capacity=2, policy=POLICY_DROP_NEWEST)
    assert b.insert(1, "a") is Admission.ACCEPTED
    assert b.insert(2, "b") is Admission.ACCEPTED
    assert b.insert(3, "c") is Admission.DROPPED
    assert 3 not in b
    assert b.get(1) == "a"
    assert b.pop(1) == "a"
    assert b.pop(1, "gone") == "gone"
    # replacing an existing key never counts against capacity
    assert b.insert(2, "b2") is Admission.ACCEPTED
    assert b.get(2) == "b2"


def test_buffer_drop_oldest_reports_eviction():
    evicted = []
    b = BoundedBuffer("b", capacity=2, policy=POLICY_DROP_OLDEST,
                      on_evict=lambda k, v: evicted.append((k, v)))
    b.insert(10, "x")
    b.insert(11, "y")
    assert b.insert(12, "z") is Admission.ACCEPTED
    assert evicted == [(10, "x")]
    assert b.oldest() == (11, "y")
    assert b.pop_oldest() == (11, "y")
    assert list(b.keys()) == [12]


def test_publish_receipt_truthiness():
    ok = PublishReceipt(Admission.ACCEPTED, 10)
    nope = PublishReceipt(Admission.DEFERRED, 10)
    assert ok and ok.accepted
    assert not nope and not nope.accepted
