"""Unit tests for the outbound batcher."""

from repro.core import BatchConfig, Batcher, Envelope, QoS
from repro.sim import Simulator


def envelope(size_payload=50, subject="a.b"):
    return Envelope(subject=subject, sender="x", session="s#0", seq=0,
                    payload=b"\x00" * size_payload, qos=QoS.RELIABLE)


def make_batcher(sim, enabled=True, batch_bytes=300, batch_delay=0.01,
                 max_messages=64):
    batches = []
    config = BatchConfig(enabled=enabled, batch_bytes=batch_bytes,
                         batch_delay=batch_delay,
                         max_messages=max_messages)
    return Batcher(sim, config, batches.append), batches


def test_disabled_batcher_passes_through():
    sim = Simulator()
    batcher, batches = make_batcher(sim, enabled=False)
    batcher.add(envelope())
    batcher.add(envelope())
    assert [len(b) for b in batches] == [1, 1]
    assert batcher.messages_batched == 2


def test_size_threshold_flushes_synchronously():
    sim = Simulator()
    # pick a threshold two envelopes stay under and three cross
    # (sizes are measured from the wire encoding)
    threshold = int(envelope().size * 2.5)
    batcher, batches = make_batcher(sim, batch_bytes=threshold)
    batcher.add(envelope())
    batcher.add(envelope())
    assert batches == []              # still under threshold
    batcher.add(envelope())           # crosses the accumulated-bytes cap
    assert len(batches) == 1
    assert len(batches[0]) == 3
    assert batcher.pending == 0


def test_delay_flushes_small_batches():
    sim = Simulator()
    batcher, batches = make_batcher(sim, batch_delay=0.01)
    batcher.add(envelope())
    assert batches == []
    sim.run_until(0.02)
    assert [len(b) for b in batches] == [1]


def test_timer_measured_from_first_message():
    sim = Simulator()
    batcher, batches = make_batcher(sim, batch_delay=0.01)
    batcher.add(envelope())
    sim.run_until(0.005)
    batcher.add(envelope())           # does NOT restart the clock
    sim.run_until(0.011)
    assert [len(b) for b in batches] == [2]


def test_max_messages_cap():
    sim = Simulator()
    batcher, batches = make_batcher(sim, batch_bytes=10**9, max_messages=4)
    for _ in range(9):
        batcher.add(envelope(size_payload=1))
    assert [len(b) for b in batches] == [4, 4]
    assert batcher.pending == 1


def test_manual_flush_and_empty_flush():
    sim = Simulator()
    batcher, batches = make_batcher(sim)
    batcher.flush()                   # empty: no callback
    assert batches == []
    batcher.add(envelope())
    batcher.flush()
    assert [len(b) for b in batches] == [1]
    sim.run_until(1.0)                # the pending timer was cancelled
    assert len(batches) == 1


def test_shutdown_drops_queued():
    sim = Simulator()
    batcher, batches = make_batcher(sim)
    batcher.add(envelope())
    batcher.shutdown()
    sim.run_until(1.0)
    assert batches == []
    assert batcher.pending == 0


def test_counters():
    sim = Simulator()
    batcher, batches = make_batcher(sim, batch_bytes=150)
    for _ in range(4):
        batcher.add(envelope())
    batcher.flush()
    assert batcher.messages_batched == 4
    assert batcher.batches_flushed == len(batches)
