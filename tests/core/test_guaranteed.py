"""Guaranteed-delivery tests: at-least-once across crashes, stable dedupe.

"Guaranteed delivery is particularly useful when sending data to a
database over an unreliable network" — so these scenarios model a
publisher feeding a durable consumer (the Object Repository pattern).
"""

from repro.core import BusConfig, InformationBus, QoS
from repro.objects import (AttributeSpec, DataObject, TypeDescriptor,
                           standard_registry)
from repro.sim import CostModel


def story_registry():
    reg = standard_registry()
    reg.register(TypeDescriptor(
        "record", attributes=[AttributeSpec("n", "int")]))
    return reg


def setup(seed=1, cost=None, config=None, hosts=3):
    bus = InformationBus(seed=seed, cost=cost or CostModel.ideal(),
                         config=config)
    bus.add_hosts(hosts)
    reg = story_registry()
    pub = bus.client("node00", "feed", registry=reg)
    received = []
    consumer = bus.client("node01", "db")
    consumer.subscribe("gd.>", lambda s, o, i: received.append(o.get("n")),
                       durable=True)
    return bus, reg, pub, consumer, received


def test_guaranteed_exactly_once_without_failures():
    bus, reg, pub, consumer, received = setup()
    for n in range(20):
        pub.publish("gd.data", DataObject(reg, "record", n=n),
                    qos=QoS.GUARANTEED)
    bus.settle(3.0)
    assert received == list(range(20))
    assert bus.daemon("node00").guaranteed_pending() == []


def test_message_logged_before_send():
    bus, reg, pub, consumer, received = setup()
    pub.publish("gd.data", DataObject(reg, "record", n=0),
                qos=QoS.GUARANTEED)
    # inspect stable storage at the instant of publish, before any settle
    ledger = bus.host("node00").stable.get("gd.ledger")
    assert len(ledger) == 1
    assert ledger[0]["subject"] == "gd.data"
    assert not ledger[0]["done"]


def test_retransmits_until_consumer_ack():
    """Consumer is partitioned away; publisher keeps retrying; delivery
    happens after healing — at-least-once regardless of failures."""
    bus, reg, pub, consumer, received = setup(seed=2)
    bus.partition({"node00"}, {"node01", "node02"})
    pub.publish("gd.data", DataObject(reg, "record", n=7),
                qos=QoS.GUARANTEED)
    bus.settle(3.0)
    assert received == []
    assert len(bus.daemon("node00").guaranteed_pending()) == 1
    bus.heal()
    bus.settle(5.0)
    assert received == [7]
    assert bus.daemon("node00").guaranteed_pending() == []


def test_publisher_crash_resumes_retransmission_from_ledger():
    bus, reg, pub, consumer, received = setup(seed=3)
    bus.partition({"node00"}, {"node01", "node02"})
    pub.publish("gd.data", DataObject(reg, "record", n=1),
                qos=QoS.GUARANTEED)
    bus.settle(1.0)
    bus.crash_host("node00")
    bus.heal()
    bus.run_for(1.0)
    assert received == []
    bus.recover_host("node00")     # ledger reloaded from stable storage
    bus.settle(5.0)
    assert received == [1]


def test_consumer_crash_no_duplicate_after_recovery():
    """The consumer acks, crashes, and the (lost) ack is retried; stable
    dedupe prevents a second application delivery."""
    bus, reg, pub, consumer, received = setup(seed=4)
    pub.publish("gd.data", DataObject(reg, "record", n=5),
                qos=QoS.GUARANTEED)
    bus.settle(2.0)
    assert received == [5]
    bus.crash_host("node01")
    bus.run_for(0.5)
    bus.recover_host("node01")
    bus.settle(5.0)
    assert received == [5]   # no redelivery: ledger id durably seen


def test_non_durable_subscribers_see_guaranteed_messages_once():
    bus, reg, pub, consumer, received = setup(seed=5)
    observer = []
    bus.client("node02", "watcher").subscribe(
        "gd.>", lambda s, o, i: observer.append(o.get("n")))
    bus.partition({"node00"}, {"node01"})   # delay the durable ack path
    pub.publish("gd.data", DataObject(reg, "record", n=3),
                qos=QoS.GUARANTEED)
    bus.settle(2.0)   # several republishes happen; node02 sees them all
    bus.heal()
    bus.settle(5.0)
    assert observer == [3]   # volatile ledger dedupe filtered republishes
    assert received == [3]


def test_ack_quorum_two_consumers():
    config = BusConfig()
    config.ack_quorum = 2
    bus = InformationBus(seed=6, cost=CostModel.ideal(), config=config)
    bus.add_hosts(3)
    reg = story_registry()
    pub = bus.client("node00", "feed", registry=reg)
    boxes = []
    for address in ("node01", "node02"):
        box = []
        bus.client(address, "db").subscribe(
            "gd.>", lambda s, o, i, box=box: box.append(o.get("n")),
            durable=True)
        boxes.append(box)
    pub.publish("gd.data", DataObject(reg, "record", n=9),
                qos=QoS.GUARANTEED)
    bus.settle(3.0)
    assert boxes[0] == [9] and boxes[1] == [9]
    assert bus.daemon("node00").guaranteed_pending() == []
    entry = bus.daemon("node00")._gpub.entry(
        bus.daemon("node00").guaranteed_pending() or
        bus.host("node00").stable.get("gd.ledger")[0]["ledger_id"])
    assert sorted(entry.acks) == ["node01", "node02"]


def test_local_durable_consumer_acks_without_network():
    bus = InformationBus(seed=7, cost=CostModel.ideal())
    bus.add_hosts(1)
    reg = story_registry()
    pub = bus.client("node00", "feed", registry=reg)
    received = []
    bus.client("node00", "db").subscribe(
        "gd.>", lambda s, o, i: received.append(o.get("n")), durable=True)
    pub.publish("gd.x", DataObject(reg, "record", n=1), qos=QoS.GUARANTEED)
    bus.settle(2.0)
    assert received == [1]
    assert bus.daemon("node00").guaranteed_pending() == []


def test_guaranteed_survives_lossy_network():
    cost = CostModel.ideal()
    cost.loss_probability = 0.2
    bus, reg, pub, consumer, received = setup(seed=8, cost=cost)
    for n in range(10):
        pub.publish("gd.data", DataObject(reg, "record", n=n),
                    qos=QoS.GUARANTEED)
    bus.settle(20.0)
    assert sorted(received) == list(range(10))
    assert bus.daemon("node00").guaranteed_pending() == []
