"""Tests for subject-naming schemes."""

import pytest

from repro.core import (BadSubjectError, FAB_SENSOR_SCHEME, NEWS_SCHEME,
                        SubjectScheme, subject_matches)


def test_paper_example_roundtrip():
    subject = FAB_SENSOR_SCHEME.subject(plant="fab5", station="litho8",
                                        metric="thick")
    assert subject == "fab5.cc.litho8.thick"
    assert FAB_SENSOR_SCHEME.parse(subject) == {
        "plant": "fab5", "station": "litho8", "metric": "thick"}
    assert FAB_SENSOR_SCHEME.matches(subject)


def test_pattern_wildcards_unbound_fields():
    pattern = FAB_SENSOR_SCHEME.pattern(plant="fab5", metric="thick")
    assert pattern == "fab5.cc.*.thick"
    assert subject_matches(pattern, "fab5.cc.litho8.thick")
    assert not subject_matches(pattern, "fab5.cc.litho8.temp")
    assert FAB_SENSOR_SCHEME.pattern() == "*.cc.*.*"


def test_pattern_tail():
    assert NEWS_SCHEME.pattern(category="equity", tail=True) == \
        "news.equity.*.>"


def test_subject_requires_all_fields():
    with pytest.raises(BadSubjectError, match="unbound"):
        NEWS_SCHEME.subject(category="equity")


def test_unknown_field_rejected():
    with pytest.raises(BadSubjectError, match="unknown"):
        NEWS_SCHEME.subject(category="equity", topic="gmc", bogus="x")
    with pytest.raises(BadSubjectError):
        NEWS_SCHEME.pattern(bogus="x")


def test_field_values_validated():
    with pytest.raises(BadSubjectError):
        NEWS_SCHEME.subject(category="equity", topic="a.b")
    with pytest.raises(BadSubjectError):
        NEWS_SCHEME.subject(category="equity", topic="")


def test_parse_rejects_mismatches():
    assert NEWS_SCHEME.parse("sports.equity.gmc") is None
    assert NEWS_SCHEME.parse("news.equity") is None
    assert NEWS_SCHEME.parse("news.equity.gmc.extra") is None
    assert not NEWS_SCHEME.matches("not..valid")


def test_bad_templates_rejected():
    for bad in ["a.{}.b", "a.{x}{y}.b", "a.{x}.{x}", "pre{x}.b"]:
        with pytest.raises(BadSubjectError):
            SubjectScheme(bad)


def test_scheme_without_fields():
    scheme = SubjectScheme("status.heartbeat")
    assert scheme.subject() == "status.heartbeat"
    assert scheme.parse("status.heartbeat") == {}
    assert scheme.parse("status.other") is None
