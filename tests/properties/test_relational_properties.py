"""Property-based tests: the relational engine against a model.

A :class:`Table` with a primary key must behave exactly like a dict of
rows under any interleaving of insert/upsert/update/delete, with or
without secondary indexes (indexes must never change results, only
costs).
"""

import string

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.objects import DataObject, standard_registry
from repro.repository import (Column, Eq, Gt, INTEGER, ObjectStore, TEXT,
                              Table, Database, TRUE)
from repro.objects import AttributeSpec, TypeDescriptor

keys = st.text(string.ascii_lowercase, min_size=1, max_size=3)
ages = st.integers(0, 50)

operations = st.lists(
    st.one_of(
        st.tuples(st.just("upsert"), keys, ages),
        st.tuples(st.just("delete"), keys, st.none()),
        st.tuples(st.just("update"), keys, ages),
    ),
    max_size=40)


def fresh_table(indexed: bool) -> Table:
    table = Table("t", [Column("id", TEXT, nullable=False),
                        Column("age", INTEGER)], primary_key="id")
    if indexed:
        table.create_index("age")
    return table


@given(operations, st.booleans())
@settings(max_examples=300, deadline=None)
def test_table_matches_dict_model(ops, indexed):
    table = fresh_table(indexed)
    model = {}
    for op, key, age in ops:
        if op == "upsert":
            table.upsert({"id": key, "age": age})
            model[key] = age
        elif op == "delete":
            removed = table.delete(Eq("id", key))
            assert removed == (1 if key in model else 0)
            model.pop(key, None)
        elif op == "update":
            changed = table.update(Eq("id", key), {"age": age})
            assert changed == (1 if key in model else 0)
            if key in model:
                model[key] = age
    assert len(table) == len(model)
    assert {r["id"]: r["age"] for r in table.select()} == model
    for key, age in model.items():
        assert table.get(key) == {"id": key, "age": age}
    # predicate agreement, with the index active
    threshold = 25
    expected = {k for k, v in model.items() if v is not None and
                v > threshold}
    assert {r["id"] for r in table.select(Gt("age", threshold))} == expected


@given(operations)
@settings(max_examples=150, deadline=None)
def test_index_never_changes_results(ops):
    plain = fresh_table(indexed=False)
    indexed = fresh_table(indexed=True)
    for op, key, age in ops:
        for table in (plain, indexed):
            if op == "upsert":
                table.upsert({"id": key, "age": age})
            elif op == "delete":
                table.delete(Eq("id", key))
            elif op == "update":
                table.update(Eq("id", key), {"age": age})
    def row_set(table, predicate):
        return {tuple(sorted(r.items())) for r in table.select(predicate)}

    for probe in range(0, 51, 7):
        assert row_set(plain, Eq("age", probe)) == \
            row_set(indexed, Eq("age", probe))
    assert plain.count(TRUE) == indexed.count(TRUE)


doc_attrs = st.fixed_dictionaries({"title": st.text(max_size=20)}, optional={
    "count": st.integers(-1000, 1000),
    "tags": st.lists(st.text(string.ascii_lowercase, min_size=1,
                             max_size=5), max_size=4),
    "attrs": st.dictionaries(st.text(string.ascii_lowercase, min_size=1,
                                     max_size=5),
                             st.text(max_size=5), max_size=3),
})


@given(st.lists(doc_attrs, min_size=1, max_size=10))
@settings(max_examples=100, deadline=None)
def test_object_store_roundtrips_any_population(population):
    reg = standard_registry()
    reg.register(TypeDescriptor("doc", attributes=[
        AttributeSpec("title", "string"),
        AttributeSpec("count", "int", required=False),
        AttributeSpec("tags", "list<string>", required=False),
        AttributeSpec("attrs", "map<string>", required=False),
    ]))
    store = ObjectStore(Database(), reg)
    objects = [DataObject(reg, "doc", attrs) for attrs in population]
    for obj in objects:
        store.store(obj)
    assert store.count("doc") == len(objects)
    for obj in objects:
        assert store.load(obj.oid) == obj
    # querying by title equality agrees with a linear scan of the input
    probe = population[0]["title"]
    expected = sorted(o.oid for o in objects if o.get("title") == probe)
    assert sorted(o.oid for o in store.query("doc", title=probe)) == expected
