"""Property-based tests: router meshes deliver exactly once, loop-free.

For random topologies (2-4 buses, full router mesh), random subscriber
placements, and random publisher placements: every subscriber whose
pattern matches receives each published message exactly once, no matter
how many legs could have forwarded it.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import BusConfig, InformationBus, Router
from repro.objects import (AttributeSpec, DataObject, TypeDescriptor,
                           standard_registry)
from repro.sim import CostModel, Simulator


@st.composite
def topology(draw):
    n_buses = draw(st.integers(2, 4))
    # subscriber placement: bus index -> True
    subscriber_buses = draw(st.sets(st.integers(0, n_buses - 1),
                                    min_size=1))
    publisher_bus = draw(st.integers(0, n_buses - 1))
    n_messages = draw(st.integers(1, 5))
    return n_buses, sorted(subscriber_buses), publisher_bus, n_messages


@given(topology())
@settings(max_examples=30, deadline=None)
def test_mesh_delivers_exactly_once(topo):
    n_buses, subscriber_buses, publisher_bus, n_messages = topo
    sim = Simulator(seed=7)
    config = BusConfig()
    config.advert_interval = 0.4
    buses = []
    for i in range(n_buses):
        bus = InformationBus(cost=CostModel.ideal(), name=f"bus{i}",
                             sim=sim, config=config)
        bus.add_hosts(2, prefix=f"b{i}h")
        buses.append(bus)
    router = Router()
    for bus in buses:
        router.add_leg(bus)

    reg = standard_registry()
    reg.register(TypeDescriptor(
        "event", attributes=[AttributeSpec("n", "int")]))

    inboxes = {}
    for index in subscriber_buses:
        box = []
        buses[index].client(f"b{index}h00", "mon").subscribe(
            "mesh.>", lambda s, o, i, box=box: box.append(o.get("n")))
        inboxes[index] = box

    sim.run_until(2.0)   # interests propagate across the mesh
    publisher = buses[publisher_bus].client(
        f"b{publisher_bus}h01", "feed", registry=reg)
    for n in range(n_messages):
        publisher.publish("mesh.data", DataObject(reg, "event", n=n))
    sim.run_until(8.0)

    expected = list(range(n_messages))
    for index, box in inboxes.items():
        assert sorted(box) == expected, \
            (f"bus{index} (publisher on bus{publisher_bus}, "
             f"subs {subscriber_buses}): got {box}")
