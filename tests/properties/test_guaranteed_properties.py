"""Property-based tests: guaranteed delivery under arbitrary fault timing.

For any schedule of consumer crashes/recoveries and partitions drawn by
hypothesis, after healing and settling: every guaranteed message is
stored at the durable consumer exactly once and the publisher's ledger
is fully acknowledged.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import InformationBus, QoS
from repro.objects import (AttributeSpec, DataObject, TypeDescriptor,
                           standard_registry)
from repro.repository import CaptureServer
from repro.sim import CostModel


fault_schedule = st.lists(
    st.tuples(
        st.floats(0.1, 8.0),                    # when
        st.sampled_from(["crash", "recover", "partition", "heal"])),
    max_size=8)


@given(st.integers(1, 12), fault_schedule)
@settings(max_examples=40, deadline=None)
def test_guaranteed_exactly_once_despite_faults(count, faults):
    cost = CostModel.ideal()
    cost.loss_probability = 0.02
    bus = InformationBus(seed=99, cost=cost)
    bus.add_hosts(3)
    reg = standard_registry()
    reg.register(TypeDescriptor(
        "event", attributes=[AttributeSpec("n", "int")]))
    publisher = bus.client("node00", "feed", registry=reg)
    capture = CaptureServer(bus.client("node01", "db"), ["gd.>"])

    # publish the batch up front, interleaved with the fault schedule
    for n in range(count):
        bus.sim.schedule_at(0.05 + n * 0.2, lambda n=n: publisher.publish(
            "gd.data", DataObject(reg, "event", n=n), qos=QoS.GUARANTEED))

    def apply(action):
        host = bus.host("node01")
        if action == "crash" and host.up:
            host.crash()
        elif action == "recover" and not host.up:
            host.recover()
        elif action == "partition" and not bus.lan.partitioned():
            bus.partition({"node00"})
        elif action == "heal":
            bus.heal()

    for when, action in faults:
        bus.sim.schedule_at(when, apply, action)

    bus.run_for(10.0)
    # end of chaos: restore the world and let retransmission finish
    bus.heal()
    if not bus.host("node01").up:
        bus.recover_host("node01")
    bus.settle(30.0)

    stored = sorted(o.get("n") for o in capture.store.query("event"))
    assert stored == list(range(count))
    assert bus.daemon("node00").guaranteed_pending() == []
