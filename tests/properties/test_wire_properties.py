"""Property-based tests for the wire codec: decode(encode(p)) == p.

The wire format is the bus's contract between hosts — every packet kind,
every envelope field combination (including non-ASCII subjects), must
survive a round trip through bytes, and any bit flip must be caught by
the checksum rather than decoded into garbage.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import Envelope, Packet, PacketKind, QoS
from repro.core.wire import (CorruptFrame, StringTable, decode_packet,
                             encode_envelope, encode_packet)
from repro.sim.framing import FRAME_OVERHEAD, flip_random_bit, frame, unframe

# subjects mix plain ASCII labels with non-ASCII ones (UTF-8 on the wire)
subjects = st.lists(
    st.text(alphabet=st.sampled_from("abcdefgh0123456789é漢字ß"),
            min_size=1, max_size=8),
    min_size=1, max_size=4).map(".".join)

envelopes = st.builds(
    Envelope,
    subject=subjects,
    sender=st.text(min_size=1, max_size=20),
    session=st.text(min_size=1, max_size=20),
    seq=st.integers(0, 2**40),
    payload=st.binary(max_size=512),
    qos=st.sampled_from([QoS.RELIABLE, QoS.GUARANTEED]),
    ledger_id=st.one_of(st.none(), st.text(min_size=1, max_size=30)),
    publish_time=st.floats(allow_nan=False, allow_infinity=False),
    via=st.lists(st.text(min_size=1, max_size=10), max_size=3).map(tuple),
)

packets = st.one_of(
    # DATA / RETRANS carry envelope batches
    st.builds(Packet,
              kind=st.sampled_from([PacketKind.DATA, PacketKind.RETRANS]),
              session=st.text(min_size=1, max_size=20),
              envelopes=st.lists(envelopes, max_size=4),
              session_start=st.floats(0, 1e6)),
    # NACK carries a missing-seq range
    st.builds(Packet,
              kind=st.just(PacketKind.NACK),
              session=st.text(min_size=1, max_size=20),
              nack_range=st.tuples(st.integers(0, 2**32),
                                   st.integers(0, 2**32))),
    # HEARTBEAT carries the sender's highest seq
    st.builds(Packet,
              kind=st.just(PacketKind.HEARTBEAT),
              session=st.text(min_size=1, max_size=20),
              last_seq=st.integers(0, 2**40),
              session_start=st.floats(0, 1e6)),
    # ACK confirms a guaranteed ledger entry
    st.builds(Packet,
              kind=st.just(PacketKind.ACK),
              session=st.text(min_size=1, max_size=20),
              ack_ledger_id=st.text(min_size=1, max_size=30),
              ack_consumer=st.text(min_size=1, max_size=20)),
)


@given(packets)
@settings(max_examples=200, deadline=None)
def test_packet_round_trip(packet):
    decoded = decode_packet(encode_packet(packet))
    assert decoded == packet
    # and the codec is deterministic: re-encoding yields identical bytes
    assert encode_packet(decoded) == encode_packet(packet)


@given(envelopes)
@settings(max_examples=200, deadline=None)
def test_envelope_size_is_encoding_length(envelope):
    assert envelope.size == len(encode_envelope(envelope))


# DATA / RETRANS are the only header-compressible kinds
data_packets = st.builds(
    Packet,
    kind=st.sampled_from([PacketKind.DATA, PacketKind.RETRANS]),
    session=st.text(min_size=1, max_size=20),
    envelopes=st.lists(envelopes, max_size=4),
    session_start=st.floats(0, 1e6))


@given(data_packets)
@settings(max_examples=200, deadline=None)
def test_compressed_packet_round_trip(packet):
    """A session's first compressed frame is self-contained: every id it
    uses it also defines, so it decodes with zero receiver state — and
    to exactly the packet the plain codec would produce."""
    table = StringTable()
    compressed = encode_packet(packet, table)
    assert decode_packet(compressed) == packet
    # re-encoding against the same table is deterministic
    assert encode_packet(packet, table) == compressed


@given(data_packets, st.integers(0, 2**31))
@settings(max_examples=200, deadline=None)
def test_compressed_bit_flip_never_decodes(packet, seed):
    table = StringTable()
    data = encode_packet(packet, table)
    flipped = flip_random_bit(data, random.Random(seed))
    assert flipped != data
    with pytest.raises(CorruptFrame):
        decode_packet(flipped, tables={})


@given(packets, st.integers(0, 2**31))
@settings(max_examples=200, deadline=None)
def test_bit_flip_never_decodes(packet, seed):
    """Any single flipped bit is rejected, never silently mis-decoded.

    A flip in the body trips the CRC; a flip in the framing trips the
    magic/length checks; either way the frame must raise, not return.
    """
    data = encode_packet(packet)
    flipped = flip_random_bit(data, random.Random(seed))
    assert flipped != data
    with pytest.raises(CorruptFrame):
        decode_packet(flipped)


@given(st.binary(max_size=256))
@settings(max_examples=100, deadline=None)
def test_frame_round_trip(body):
    framed = frame(body)
    assert len(framed) == len(body) + FRAME_OVERHEAD
    assert unframe(framed) == body


@given(st.binary(max_size=256), st.integers(1, 64))
@settings(max_examples=100, deadline=None)
def test_truncated_frame_rejected(body, cut):
    framed = frame(body)
    with pytest.raises(CorruptFrame):
        unframe(framed[:-min(cut, len(framed))])


def test_encode_once_cache_reuses_bytes():
    """Fan-out and NACK repair reuse one encoding per stamped envelope."""
    e = Envelope(subject="a.b", sender="x", session="h#0", seq=3,
                 payload=b"payload")
    first = encode_envelope(e)
    assert encode_envelope(e) is first          # cached, not re-marshalled
    e.seq = 4                                   # re-stamped: cache invalid
    assert encode_envelope(e) is not first


def test_garbage_is_rejected():
    for junk in (b"", b"IB", b"not a frame at all", b"\x00" * 64):
        with pytest.raises(CorruptFrame):
            decode_packet(junk)
