"""Property-based tests for the framing primitives: varint hygiene and
the allocation-lean :class:`~repro.sim.framing.Cursor` fast path.

A corrupt frame must never make the varint decoder spin through an
unbounded run of continuation bytes — the length is capped at
:data:`~repro.sim.framing.MAX_VARINT_BYTES` and anything longer raises
:class:`~repro.sim.framing.CorruptFrame`.  The cursor must agree
byte-for-byte with the historical ``read_*`` free functions.
"""

from io import BytesIO

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.framing import (CorruptFrame, Cursor, MAX_VARINT_BYTES,
                               frame, read_bytes, read_f64, read_str,
                               read_varint, unframe, unframe_view,
                               write_bytes, write_f64, write_str,
                               write_varint)


@given(st.integers(0, 2**64 - 1))
@settings(max_examples=200, deadline=None)
def test_varint_round_trip(value):
    out = BytesIO()
    write_varint(out, value)
    data = out.getvalue()
    assert len(data) <= MAX_VARINT_BYTES
    assert read_varint(data, 0) == (value, len(data))
    cur = Cursor(data)
    assert cur.varint() == value
    assert cur.exhausted


@given(st.integers(min_value=-(2**64), max_value=-1))
@settings(max_examples=50, deadline=None)
def test_write_varint_rejects_negative(value):
    with pytest.raises(ValueError):
        write_varint(BytesIO(), value)


@given(st.integers(MAX_VARINT_BYTES, 64))
@settings(max_examples=50, deadline=None)
def test_overlong_varint_is_rejected(length):
    """``length`` continuation bytes never terminate within the cap: both
    decoders must raise instead of spinning through the run."""
    data = b"\x80" * length + b"\x01"
    with pytest.raises(CorruptFrame):
        read_varint(data, 0)
    with pytest.raises(CorruptFrame):
        Cursor(data).varint()


def test_maximal_varint_is_accepted():
    """Exactly 10 bytes encodes up to 70 bits — the cap must not reject
    a legitimate 64-bit value."""
    value = 2**64 - 1
    out = BytesIO()
    write_varint(out, value)
    data = out.getvalue()
    assert len(data) == MAX_VARINT_BYTES
    assert read_varint(data, 0)[0] == value
    assert Cursor(data).varint() == value


@given(st.binary(max_size=64), st.text(max_size=32),
       st.floats(allow_nan=False, allow_infinity=False),
       st.integers(0, 2**40))
@settings(max_examples=200, deadline=None)
def test_cursor_agrees_with_read_functions(raw, text, value, number):
    out = BytesIO()
    write_bytes(out, raw)
    write_str(out, text)
    write_f64(out, value)
    write_varint(out, number)
    data = out.getvalue()

    got_raw, pos = read_bytes(data, 0)
    got_text, pos = read_str(data, pos)
    got_value, pos = read_f64(data, pos)
    got_number, pos = read_varint(data, pos)
    assert pos == len(data)

    cur = Cursor(data)
    assert cur.bytes_() == got_raw == raw
    assert cur.str_() == got_text == text
    assert cur.f64() == got_value == value
    assert cur.varint() == got_number == number
    assert cur.exhausted and cur.remaining() == 0


@given(st.binary(max_size=256))
@settings(max_examples=100, deadline=None)
def test_unframe_view_is_zero_copy_unframe(body):
    framed = frame(body)
    view = unframe_view(framed)
    assert isinstance(view, memoryview)
    assert view.tobytes() == unframe(framed) == body


@given(st.binary(min_size=1, max_size=64))
@settings(max_examples=100, deadline=None)
def test_cursor_rejects_truncation(body):
    """Reading past the end of a buffer always raises, never wraps."""
    out = BytesIO()
    write_bytes(out, body)
    data = out.getvalue()[:-1]
    with pytest.raises(CorruptFrame):
        Cursor(data).bytes_()
    with pytest.raises(CorruptFrame):
        cur = Cursor(b"")
        cur.u8()
    with pytest.raises(CorruptFrame):
        Cursor(b"\x00" * 7).f64()
