"""Property: sharding never reorders a subject's messages.

The shard map keys on the first subject element, so every message of a
given subject rides one plane — per-subject delivery order at any
subscriber must be invariant under ``subject_shards`` in {1, 2, 8}.
Cross-subject interleaving MAY change (that is the point of sharding);
per-subject sequences may not.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import BusConfig, InformationBus
from repro.sim import CostModel

#: first elements chosen to spread across planes (crc32 % 8 of these
#: is 5, 3, 2, 3, 0 — shards 1/2/8 all see multi-plane traffic)
FIRSTS = ("feed0", "feed1", "alpha", "beta", "news")

SHARD_COUNTS = (1, 2, 8)


def deliveries(shards, firsts, seed):
    config = BusConfig(subject_shards=shards)
    bus = InformationBus(seed=seed, cost=CostModel.ideal(), config=config)
    bus.add_hosts(2)
    received = {}
    bus.client("node01", "sub").subscribe(
        ">", lambda s, o, i: received.setdefault(s, []).append(o["n"]))
    pub = bus.client("node00", "pub")
    for n, first in enumerate(firsts):
        pub.publish(f"{first}.data", {"n": n})
    bus.settle(5.0)
    return {subject: tuple(ns) for subject, ns in received.items()}


@given(st.lists(st.sampled_from(FIRSTS), min_size=1, max_size=25),
       st.integers(0, 3))
@settings(max_examples=20, deadline=None)
def test_per_subject_order_invariant_under_shard_count(firsts, seed):
    baseline = deliveries(1, firsts, seed)
    # sanity: every message arrived, in publish order per subject
    for first in set(firsts):
        expected = tuple(n for n, f in enumerate(firsts) if f == first)
        assert baseline[f"{first}.data"] == expected
    for shards in SHARD_COUNTS[1:]:
        assert deliveries(shards, firsts, seed) == baseline
