"""Property-based tests: the wire format round-trips everything."""

import string

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.objects import (AttributeSpec, DataObject, TypeDescriptor,
                           decode, encode, standard_registry)

scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(2**63), max_value=2**63 - 1),
    st.floats(allow_nan=False, allow_infinity=False),
    st.text(max_size=40),
    st.binary(max_size=40),
)

values = st.recursive(
    scalars,
    lambda children: st.one_of(
        st.lists(children, max_size=5),
        st.dictionaries(st.text(string.ascii_lowercase, max_size=8),
                        children, max_size=5)),
    max_leaves=25)


@given(values)
@settings(max_examples=300, deadline=None)
def test_scalar_and_container_roundtrip(value):
    reg = standard_registry()
    assert decode(encode(value), reg) == value


@given(values)
@settings(max_examples=150, deadline=None)
def test_encoding_is_deterministic(value):
    assert encode(value) == encode(value)


attr_values = st.fixed_dictionaries({}, optional={
    "title": st.text(max_size=30),
    "count": st.integers(-10**9, 10**9),
    "ratio": st.floats(allow_nan=False, allow_infinity=False),
    "flag": st.booleans(),
    "blob": st.binary(max_size=30),
    "tags": st.lists(st.text(max_size=8), max_size=5),
    "attrs": st.dictionaries(st.text(string.ascii_lowercase, min_size=1,
                                     max_size=6),
                             st.text(max_size=8), max_size=4),
    "extra": values,
})


def doc_registry():
    reg = standard_registry()
    reg.register(TypeDescriptor("doc", attributes=[
        AttributeSpec("title", "string", required=False),
        AttributeSpec("count", "int", required=False),
        AttributeSpec("ratio", "float", required=False),
        AttributeSpec("flag", "bool", required=False),
        AttributeSpec("blob", "bytes", required=False),
        AttributeSpec("tags", "list<string>", required=False),
        AttributeSpec("attrs", "map<string>", required=False),
        AttributeSpec("extra", "any", required=False),
    ]))
    return reg


@given(attr_values)
@settings(max_examples=200, deadline=None)
def test_object_roundtrip_preserves_structure_and_oid(attrs):
    reg = doc_registry()
    obj = DataObject(reg, "doc", attrs)
    back = decode(encode(obj), reg)
    assert back == obj
    assert back.oid == obj.oid
    for name, value in attrs.items():
        assert back.get(name) == value


@given(attr_values)
@settings(max_examples=100, deadline=None)
def test_inline_types_roundtrip_to_a_blank_registry(attrs):
    """Any valid object can teach a completely fresh process its type."""
    reg = doc_registry()
    obj = DataObject(reg, "doc", attrs)
    wire = encode(obj, reg, inline_types=True)
    fresh = standard_registry()
    back = decode(wire, fresh)
    assert back == obj
    assert fresh.has("doc")
    assert [a.name for a in fresh.all_attributes("doc")] == \
        [a.name for a in reg.all_attributes("doc")]


@given(values)
@settings(max_examples=150, deadline=None)
def test_truncation_never_decodes_silently(value):
    """Any strict prefix of an encoding must raise, never return junk."""
    import pytest
    reg = standard_registry()
    wire = encode(value)
    for cut in {1, 3, len(wire) // 2, len(wire) - 1} - {len(wire)}:
        if 0 < cut < len(wire):
            with pytest.raises(Exception):
                decode(wire[:cut], reg)


# ----------------------------------------------------------------------
# the session type plane (O-tag encoding)
# ----------------------------------------------------------------------

@given(attr_values)
@settings(max_examples=150, deadline=None)
def test_typed_roundtrip_through_a_type_table(attrs):
    """``encode_typed`` + a resolver must round-trip anything the inline
    path round-trips, teaching a blank registry the same shape."""
    from repro.core import TypeTable
    from repro.objects import encode_typed
    reg = doc_registry()
    obj = DataObject(reg, "doc", attrs)
    table = TypeTable()
    payload, refs = encode_typed(obj, reg, table)
    assert refs                                   # a DataObject has refs
    fresh = standard_registry()
    back = decode(payload, fresh, type_resolver=table)
    assert back == obj
    assert back.oid == obj.oid
    assert fresh.has("doc")
    assert [a.name for a in fresh.all_attributes("doc")] == \
        [a.name for a in reg.all_attributes("doc")]


@given(attr_values, st.integers(min_value=2, max_value=5))
@settings(max_examples=60, deadline=None)
def test_typedef_reregistration_is_idempotent(attrs, repeats):
    """Decoding N payloads of the same session leaves one registered
    descriptor; the table interns one id per shape no matter how often
    the type is used."""
    from repro.core import TypeTable
    from repro.objects import encode_typed
    reg = doc_registry()
    table = TypeTable()
    fresh = standard_registry()
    payloads = [encode_typed(DataObject(reg, "doc", attrs), reg, table)[0]
                for _ in range(repeats)]
    for payload in payloads:
        decode(payload, fresh, type_resolver=table)
    assert fresh.get("doc") is fresh.get("doc")   # single stable object
    assert len(table) == len(set(
        encode_typed(DataObject(reg, "doc", attrs), reg, table)[1]))


@given(values, values)
@settings(max_examples=100, deadline=None)
def test_bare_values_ignore_the_type_table(a, b):
    """Values without DataObjects encode identically with and without a
    table, and intern nothing."""
    from repro.core import TypeTable
    from repro.objects import encode_typed
    reg = doc_registry()
    table = TypeTable()
    for value in (a, b, [a, b], {"x": a}):
        payload, refs = encode_typed(value, reg, table)
        assert refs == ()
        assert payload == encode(value)
    assert len(table) == 0


@given(st.lists(st.sampled_from(["string", "int", "float", "bool"]),
                min_size=1, max_size=4, unique=False),
       st.lists(st.sampled_from(["string", "int", "float", "bool"]),
                min_size=1, max_size=4, unique=False))
@settings(max_examples=100, deadline=None)
def test_fingerprint_equality_is_shape_equality(types_a, types_b):
    """Two descriptors fingerprint equal iff their shapes (names, types,
    order) match — redefinition detection rests on this."""
    def make(type_names):
        return TypeDescriptor("t", attributes=[
            AttributeSpec(f"a{i}", tn, required=False)
            for i, tn in enumerate(type_names)])
    a, b = make(types_a), make(types_b)
    assert (a.fingerprint() == b.fingerprint()) == (types_a == types_b)
    assert a.same_shape(b) == (types_a == types_b)


@given(attr_values)
@settings(max_examples=60, deadline=None)
def test_conflicting_fingerprint_redefinition_raises(attrs):
    """A session whose typedef conflicts with a receiver's registered
    shape is a per-message decode failure, exactly like inline mode."""
    import pytest
    from repro.core import TypeTable
    from repro.objects import TypeError_, encode_typed
    reg = doc_registry()
    table = TypeTable()
    payload, _ = encode_typed(DataObject(reg, "doc", attrs), reg, table)
    conflicted = standard_registry()
    conflicted.register(TypeDescriptor("doc", attributes=[
        AttributeSpec("other", "bytes", required=False)]))
    with pytest.raises(TypeError_):
        decode(payload, conflicted, type_resolver=table)
    # inline mode fails the same way on the same conflict
    wire = encode(DataObject(reg, "doc", attrs), reg, inline_types=True)
    conflicted2 = standard_registry()
    conflicted2.register(TypeDescriptor("doc", attributes=[
        AttributeSpec("other", "bytes", required=False)]))
    with pytest.raises(TypeError_):
        decode(wire, conflicted2)
