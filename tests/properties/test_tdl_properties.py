"""Property-based tests: TDL evaluation against a Python reference."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.tdl import Interpreter


# ----------------------------------------------------------------------
# arithmetic expressions evaluate like Python
# ----------------------------------------------------------------------

@st.composite
def arith_expr(draw, depth=0):
    """Returns (tdl_source, python_value) for a random arithmetic tree."""
    if depth >= 3 or draw(st.booleans()):
        value = draw(st.integers(-50, 50))
        return str(value), value
    op = draw(st.sampled_from(["+", "-", "*"]))
    arity = draw(st.integers(2, 3))
    parts = [draw(arith_expr(depth=depth + 1)) for _ in range(arity)]
    source = f"({op} " + " ".join(p[0] for p in parts) + ")"
    values = [p[1] for p in parts]
    if op == "+":
        result = sum(values)
    elif op == "*":
        result = 1
        for v in values:
            result *= v
    else:
        result = values[0]
        for v in values[1:]:
            result -= v
    return source, result


@given(arith_expr())
@settings(max_examples=300, deadline=None)
def test_arithmetic_matches_python(pair):
    source, expected = pair
    assert Interpreter().eval_text(source) == expected


@given(st.lists(st.integers(-100, 100), min_size=1, max_size=10))
@settings(max_examples=150, deadline=None)
def test_list_pipeline_matches_python(values):
    tdl = Interpreter()
    tdl.define("xs", list(values))
    assert tdl.eval_text("(length xs)") == len(values)
    assert tdl.eval_text("(reverse xs)") == list(reversed(values))
    assert tdl.eval_text("(sort xs)") == sorted(values)
    assert tdl.eval_text("(mapcar (lambda (x) (* 2 x)) xs)") == \
        [2 * v for v in values]
    assert tdl.eval_text("(filter (lambda (x) (> x 0)) xs)") == \
        [v for v in values if v > 0]
    assert tdl.eval_text("(reduce + xs 0)") == sum(values)


@given(st.lists(st.integers(0, 20), min_size=1, max_size=8))
@settings(max_examples=100, deadline=None)
def test_recursive_function_agrees(values):
    tdl = Interpreter()
    tdl.eval_text("""
        (defun total (xs)
          (if (= (length xs) 0) 0
              (+ (first xs) (total (rest xs)))))
    """)
    tdl.define("xs", list(values))
    assert tdl.eval_text("(total xs)") == sum(values)


@given(st.integers(0, 40))
@settings(max_examples=50, deadline=None)
def test_while_loop_counts(n):
    tdl = Interpreter()
    tdl.define("target", n)
    assert tdl.eval_text(
        "(define i 0) (while (< i target) (setq i (+ i 1))) i") == n


# ----------------------------------------------------------------------
# environments behave lexically
# ----------------------------------------------------------------------

@given(st.integers(-100, 100), st.integers(-100, 100))
@settings(max_examples=50, deadline=None)
def test_closures_capture_definition_environment(a, b):
    tdl = Interpreter()
    tdl.define("a", a)
    tdl.eval_text("(defun make-adder () (lambda (x) (+ x a)))")
    tdl.eval_text("(define f (make-adder))")
    tdl.eval_text(f"(define a {b})")    # rebinding the global is visible
    assert tdl.eval_text("(f 1)") == b + 1
    # but a let-bound shadow is not
    assert tdl.eval_text("(let ((a 999)) (f 1))") == b + 1
