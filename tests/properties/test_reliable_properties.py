"""Property-based tests: the reliable-delivery state machine.

Driven directly (no network): arbitrary interleavings of loss,
duplication, and reordering against a cooperating sender must yield
exactly-once, in-order delivery; with the sender gone (no repairs), the
delivered stream must still be an ordered, duplicate-free subsequence.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import Envelope, QoS, ReliableConfig, ReliableReceiver, ReliableSender
from repro.sim import Simulator


def make_envelopes(sender, count):
    return [sender.stamp(Envelope(subject="p.x", sender="app",
                                  session="", seq=0, payload=b"",
                                  qos=QoS.RELIABLE))
            for _ in range(count)]


@given(st.integers(1, 60), st.data())
@settings(max_examples=150, deadline=None)
def test_any_arrival_order_with_repair_is_exactly_once(count, data):
    sim = Simulator(seed=1)
    # the sync window (= nack_delay) must cover the injected reorder
    # depth, as it does in the deployed configuration; beyond it, early
    # messages are indistinguishable from pre-join history
    config = ReliableConfig(nack_delay=0.02)
    sender = ReliableSender("host#0", config)
    envelopes = make_envelopes(sender, count)

    delivered = []

    def send_nack(session, first, last):
        # the cooperating sender: repairs arrive promptly
        for envelope in sender.repair(first, last):
            sim.schedule(0.0005, receiver.handle_envelope, envelope, True,
                         0.0)

    receiver = ReliableReceiver(sim, config,
                                lambda e, r: delivered.append(e.seq),
                                send_nack)

    # the session began while this receiver was already up, so even the
    # first message is recoverable (exactly-once under normal operation)
    session_start = 0.0
    # arbitrary schedule: drop some, duplicate some, reorder all
    order = data.draw(st.permutations(range(count)))
    dropped = data.draw(st.sets(st.sampled_from(range(count)),
                                max_size=count // 2 if count > 1 else 0))
    for position, index in enumerate(order):
        if index in dropped:
            continue
        copies = data.draw(st.integers(1, 2))
        for _ in range(copies):
            sim.schedule(0.0001 * (position + 1),
                         receiver.handle_envelope, envelopes[index], False,
                         session_start)
    # heartbeats reveal any lost tail (or a lost head)
    for k in range(1, 6):
        sim.schedule(0.05 * k, receiver.handle_heartbeat, "host#0",
                     sender.last_seq, session_start)
    sim.run_until(10.0)
    assert delivered == list(range(1, count + 1))


@given(st.integers(2, 50), st.data())
@settings(max_examples=150, deadline=None)
def test_without_repair_delivery_is_ordered_subsequence(count, data):
    """A dead sender answers no NACKs; at-most-once but never disordered
    and never duplicated."""
    sim = Simulator(seed=2)
    config = ReliableConfig(nack_delay=0.001, nack_max=3)
    sender = ReliableSender("host#0", config)
    envelopes = make_envelopes(sender, count)
    delivered = []
    receiver = ReliableReceiver(sim, config,
                                lambda e, r: delivered.append(e.seq),
                                lambda *args: None)   # NACKs vanish
    order = data.draw(st.permutations(range(count)))
    dropped = data.draw(st.sets(st.sampled_from(range(count)),
                                max_size=count - 1))
    for position, index in enumerate(order):
        if index in dropped:
            continue
        sim.schedule(0.0001 * (position + 1),
                     receiver.handle_envelope, envelopes[index], False)
    sim.run_until(30.0)
    # strictly increasing: no duplicates, no reordering, ever
    assert all(a < b for a, b in zip(delivered, delivered[1:]))
    # everything delivered was genuinely sent
    assert set(delivered) <= set(range(1, count + 1))
    # accounting is consistent (the duplicates counter may include
    # pre-baseline arrivals a late joiner classifies as history)
    stats = receiver.stats("host#0")
    assert stats.delivered == len(delivered)


@given(st.integers(1, 40), st.integers(1, 40))
@settings(max_examples=100, deadline=None)
def test_two_sessions_are_independent(count_a, count_b):
    """Messages from different senders are not ordered relative to each
    other, but each session is FIFO."""
    sim = Simulator(seed=3)
    config = ReliableConfig(nack_delay=0.001)
    sender_a = ReliableSender("a#0", config)
    sender_b = ReliableSender("b#0", config)
    delivered = []
    receiver = ReliableReceiver(
        sim, config, lambda e, r: delivered.append((e.session, e.seq)),
        lambda *args: None)
    # interleave the two streams
    for i in range(max(count_a, count_b)):
        if i < count_a:
            sim.schedule(0.001 * i, receiver.handle_envelope,
                         sender_a.stamp(Envelope("p.a", "x", "", 0, b"")),
                         False)
        if i < count_b:
            sim.schedule(0.001 * i + 0.0005, receiver.handle_envelope,
                         sender_b.stamp(Envelope("p.b", "x", "", 0, b"")),
                         False)
    sim.run_until(5.0)
    a_seqs = [seq for session, seq in delivered if session == "a#0"]
    b_seqs = [seq for session, seq in delivered if session == "b#0"]
    assert a_seqs == list(range(1, count_a + 1))
    assert b_seqs == list(range(1, count_b + 1))
