"""Property-based tests: subject matching and the subscription trie.

The trie must agree exactly with the reference matcher
(:func:`subject_matches`) on arbitrary pattern/subject populations —
that equivalence is what makes Figure 8's flat curve trustworthy.
"""

import string

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import SubjectTrie, subject_matches

_ELEMENT_ALPHABET = string.ascii_lowercase[:6] + "01"

element = st.text(_ELEMENT_ALPHABET, min_size=1, max_size=3)

subject = st.lists(element, min_size=1, max_size=5).map(".".join)

pattern_element = st.one_of(element, st.just("*"))


@st.composite
def pattern(draw):
    elements = draw(st.lists(pattern_element, min_size=1, max_size=5))
    if draw(st.booleans()):
        elements.append(">")
    return ".".join(elements)


@given(st.lists(pattern(), min_size=0, max_size=30), subject)
@settings(max_examples=300, deadline=None)
def test_trie_agrees_with_reference_matcher(patterns, probe):
    trie = SubjectTrie()
    for index, p in enumerate(patterns):
        trie.insert(p, index)
    expected = {index for index, p in enumerate(patterns)
                if subject_matches(p, probe)}
    assert trie.match(probe) == expected


@given(st.lists(st.tuples(pattern(), st.integers(0, 5)),
                min_size=1, max_size=25),
       st.data())
@settings(max_examples=200, deadline=None)
def test_trie_remove_is_exact_inverse_of_insert(entries, data):
    """Insert everything, remove a random subset, and the trie must
    behave as if only the survivors were ever inserted."""
    trie = SubjectTrie()
    for p, v in entries:
        trie.insert(p, v)
    unique = list(dict.fromkeys(entries))
    to_remove = data.draw(st.lists(st.sampled_from(unique), unique=True,
                                   max_size=len(unique)))
    for p, v in to_remove:
        assert trie.remove(p, v)
    survivors = [e for e in unique if e not in to_remove]
    reference = SubjectTrie()
    for p, v in survivors:
        reference.insert(p, v)
    assert len(trie) == len(reference)
    probe = data.draw(subject)
    assert trie.match(probe) == reference.match(probe)


@given(st.lists(pattern(), min_size=1, max_size=20), subject)
@settings(max_examples=200, deadline=None)
def test_duplicate_inserts_do_not_change_matching(patterns, probe):
    once = SubjectTrie()
    twice = SubjectTrie()
    for index, p in enumerate(patterns):
        once.insert(p, index)
        twice.insert(p, index)
        twice.insert(p, index)
    assert once.match(probe) == twice.match(probe)
    assert len(once) == len(twice)


@given(subject)
@settings(max_examples=100, deadline=None)
def test_exact_pattern_always_matches_itself(probe):
    assert subject_matches(probe, probe)
    trie = SubjectTrie()
    trie.insert(probe, "self")
    assert trie.match(probe) == {"self"}


@given(subject)
@settings(max_examples=100, deadline=None)
def test_tail_wildcard_matches_any_extension(probe):
    assert subject_matches(">", probe)
    assert subject_matches(f"{probe}.>", probe + ".more")
    assert not subject_matches(f"{probe}.>", probe)


@given(st.lists(element, min_size=2, max_size=5))
@settings(max_examples=100, deadline=None)
def test_star_matches_exactly_one_element(elements):
    probe = ".".join(elements)
    for index in range(len(elements)):
        wild = elements[:index] + ["*"] + elements[index + 1:]
        assert subject_matches(".".join(wild), probe)
    # a pattern with one fewer/more element never matches
    assert not subject_matches(".".join(["*"] * (len(elements) - 1)), probe)
    assert not subject_matches(".".join(["*"] * (len(elements) + 1)), probe)
