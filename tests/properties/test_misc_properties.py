"""Property-based tests: TDL reader, bench statistics, payload sizing."""

import math
import string

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bench import MIN_PAYLOAD_SIZE, payload_of_size, summarize
from repro.objects import decode, standard_registry
from repro.tdl import Keyword, Symbol, read, read_all, to_source

# ----------------------------------------------------------------------
# TDL reader round-trip
# ----------------------------------------------------------------------

symbol_text = st.text(string.ascii_lowercase + "-+*/<>=!?_",
                      min_size=1, max_size=8).filter(
    lambda s: not s[0].isdigit() and s not in ("t", "nil")
    and not s.startswith(":") and not any(c in s for c in "()'; \t\n\""))

atoms = st.one_of(
    st.integers(-10**9, 10**9),
    st.booleans().map(lambda b: True if b else None),
    st.text(max_size=15),
    symbol_text.map(Symbol),
    symbol_text.map(Keyword),
)

forms = st.recursive(atoms, lambda children: st.lists(children, max_size=5),
                     max_leaves=20)


@given(forms)
@settings(max_examples=300, deadline=None)
def test_reader_roundtrips_canonical_source(form):
    # ints that reparse as floats (none here) and symbol/keyword edge
    # cases are filtered by construction
    source = to_source(form)
    assert read(source) == form


@given(st.lists(forms, min_size=0, max_size=5))
@settings(max_examples=100, deadline=None)
def test_read_all_concatenation(form_list):
    source = "\n".join(to_source(f) for f in form_list)
    assert read_all(source) == form_list


# ----------------------------------------------------------------------
# statistics
# ----------------------------------------------------------------------

samples = st.lists(st.floats(min_value=-1e6, max_value=1e6,
                             allow_nan=False), min_size=1, max_size=200)


@given(samples)
@settings(max_examples=300, deadline=None)
def test_summary_invariants(values):
    summary = summarize(values)
    tol = 1e-9 * max(1.0, max(abs(v) for v in values))
    assert summary.n == len(values)
    assert summary.minimum - tol <= summary.mean <= summary.maximum + tol
    assert summary.variance >= 0
    assert summary.ci99 >= 0
    assert summary.ci_low <= summary.mean <= summary.ci_high
    assert math.isclose(summary.stddev ** 2, summary.variance,
                        rel_tol=1e-9, abs_tol=1e-12)


@given(st.floats(-1e6, 1e6, allow_nan=False), st.integers(1, 50))
@settings(max_examples=100, deadline=None)
def test_constant_series_has_zero_spread(value, n):
    summary = summarize([value] * n)
    tol = 1e-18 * max(1.0, value * value)
    assert summary.variance <= tol     # float rounding only
    assert summary.ci99 <= math.sqrt(tol) * 100
    assert math.isclose(summary.mean, value, rel_tol=1e-12, abs_tol=1e-12)


@given(samples, st.floats(0.5, 2.0), st.floats(-100, 100))
@settings(max_examples=150, deadline=None)
def test_summary_affine_equivariance(values, scale, shift):
    base = summarize(values)
    transformed = summarize([scale * v + shift for v in values])
    assert math.isclose(transformed.mean, scale * base.mean + shift,
                        rel_tol=1e-6, abs_tol=1e-6)
    assert math.isclose(transformed.variance, scale ** 2 * base.variance,
                        rel_tol=1e-5, abs_tol=1e-4)


# ----------------------------------------------------------------------
# payload sizing
# ----------------------------------------------------------------------

@given(st.integers(MIN_PAYLOAD_SIZE, 20000))
@settings(max_examples=200, deadline=None)
def test_payload_is_exact_and_decodable(size):
    payload = payload_of_size(size)
    assert len(payload) == size
    value = decode(payload, standard_registry())
    # padding is a bytes value, or a singleton list of one at varint
    # length boundaries
    assert isinstance(value, bytes) or (
        isinstance(value, list) and len(value) == 1
        and isinstance(value[0], bytes))


# ----------------------------------------------------------------------
# subject schemes
# ----------------------------------------------------------------------

scheme_element = st.text(string.ascii_lowercase + string.digits,
                         min_size=1, max_size=5)


@given(st.lists(scheme_element, min_size=1, max_size=4, unique=True),
       st.data())
@settings(max_examples=150, deadline=None)
def test_subject_scheme_roundtrips(fields, data):
    from repro.core import SubjectScheme
    template = "root." + ".".join("{" + f + "}" for f in fields)
    scheme = SubjectScheme(template)
    bindings = {f: data.draw(scheme_element) for f in fields}
    subject = scheme.subject(**bindings)
    assert scheme.parse(subject) == bindings
    assert scheme.matches(subject)
    # partial bindings produce patterns that match the full subject
    partial = dict(list(bindings.items())[:len(bindings) // 2])
    from repro.core import subject_matches
    assert subject_matches(scheme.pattern(**partial), subject)
