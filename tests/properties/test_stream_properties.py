"""Property-based tests: the TCP-like stream under arbitrary conditions.

RMI rides on these streams, so their contract — every message delivered
exactly once, in order, regardless of loss/duplication/reordering —
must hold for any workload the network can throw at them.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import CostModel, EthernetSegment, Simulator, StreamManager


network_conditions = st.fixed_dictionaries({
    "loss": st.sampled_from([0.0, 0.05, 0.15, 0.3]),
    "dup": st.sampled_from([0.0, 0.1, 0.3]),
    "jitter": st.sampled_from([0.0, 0.002, 0.01]),
    "seed": st.integers(0, 10_000),
})

workload = st.lists(st.integers(1, 2000),   # message sizes
                    min_size=1, max_size=40)


@given(network_conditions, workload)
@settings(max_examples=60, deadline=None)
def test_stream_exactly_once_in_order(conditions, sizes):
    cost = CostModel.ideal()
    cost.loss_probability = conditions["loss"]
    cost.duplicate_probability = conditions["dup"]
    cost.reorder_jitter = conditions["jitter"]
    cost.mtu = 512      # force fragmentation for the bigger messages
    sim = Simulator(seed=conditions["seed"])
    lan = EthernetSegment(sim, cost=cost)
    a, b = lan.add_host("a"), lan.add_host("b")

    got = []
    server = StreamManager(sim, b, 50)
    server.listen(lambda c: setattr(
        c, "on_message", lambda m, s: got.append((m, s))))
    client = StreamManager(sim, a, 51)
    conn = client.connect("b", 50)
    errors = []
    conn.on_close = lambda e: errors.append(e)
    for index, size in enumerate(sizes):
        # the message content encodes its index, so order is checkable
        conn.send(bytes([index]) * size)
    sim.run_until(120.0)

    if errors and errors[0] is not None:
        # retransmit exhaustion is only legitimate under real loss —
        # fragmentation amplifies it (a 3-fragment message at 15% frame
        # loss is lost ~39% of the time), so 0.15 can legitimately
        # exhaust the 8 go-back-N retries on an unlucky seed
        assert conditions["loss"] >= 0.15, errors
        # and whatever did arrive is still an in-order prefix
        delivered = [m[0] for m, _ in got]
        assert delivered == list(range(len(delivered)))
        return
    assert [m[0] for m, _ in got] == list(range(len(sizes)))
    assert [s for _, s in got] == sizes


@given(st.integers(0, 5000), st.integers(1, 30))
@settings(max_examples=60, deadline=None)
def test_bidirectional_streams_are_independent(seed, count):
    """Request/reply style: messages flow both ways on one connection."""
    sim = Simulator(seed=seed)
    lan = EthernetSegment(sim, cost=CostModel.ideal())
    a, b = lan.add_host("a"), lan.add_host("b")
    server_got, client_got = [], []

    def on_accept(conn):
        def echo(m, s):
            server_got.append(m)
            conn.send(b"reply:" + m)
        conn.on_message = echo

    server = StreamManager(sim, b, 50)
    server.listen(on_accept)
    client = StreamManager(sim, a, 51)
    conn = client.connect("b", 50)
    conn.on_message = lambda m, s: client_got.append(m)
    for i in range(count):
        conn.send(bytes([i]) * 64)
    sim.run_until(30.0)
    assert server_got == [bytes([i]) * 64 for i in range(count)]
    assert client_got == [b"reply:" + bytes([i]) * 64
                          for i in range(count)]
