"""Unit tests for the session type plane: fingerprints, TypeTable,
PeerTypeView, and the typed (``O``-tag) marshal path."""

import pytest

from repro.core import PeerTypeView, TypeTable
from repro.objects import (AttributeSpec, DataObject, TypeDescriptor,
                           UnknownTypeError, decode, encode, encode_typed,
                           encoded_size, standard_registry)


@pytest.fixture
def reg():
    registry = standard_registry()
    registry.register(TypeDescriptor(
        "source", attributes=[AttributeSpec("name", "string")]))
    registry.register(TypeDescriptor(
        "story",
        attributes=[AttributeSpec("headline", "string"),
                    AttributeSpec("source", "source", required=False)]))
    return registry


# ----------------------------------------------------------------------
# fingerprints
# ----------------------------------------------------------------------
def test_fingerprint_is_stable_across_instances():
    a = TypeDescriptor("t", attributes=[AttributeSpec("x", "string")])
    b = TypeDescriptor("t", attributes=[AttributeSpec("x", "string")])
    assert a is not b
    assert a.fingerprint() == b.fingerprint()
    assert a.same_shape(b)


def test_fingerprint_changes_with_shape():
    a = TypeDescriptor("t", attributes=[AttributeSpec("x", "string")])
    b = TypeDescriptor("t", attributes=[AttributeSpec("x", "int")])
    c = TypeDescriptor("t", attributes=[AttributeSpec("y", "string")])
    assert a.fingerprint() != b.fingerprint()
    assert a.fingerprint() != c.fingerprint()
    assert not a.same_shape(b)


def test_fingerprint_sees_declaration_order():
    a = TypeDescriptor("t", attributes=[AttributeSpec("x", "string"),
                                        AttributeSpec("y", "string")])
    b = TypeDescriptor("t", attributes=[AttributeSpec("y", "string"),
                                        AttributeSpec("x", "string")])
    assert a.fingerprint() != b.fingerprint()


# ----------------------------------------------------------------------
# TypeTable
# ----------------------------------------------------------------------
def test_intern_assigns_dense_first_use_ids(reg):
    table = TypeTable()
    assert table.intern(reg.get("source")) == 0
    assert table.intern(reg.get("story")) == 1
    assert table.intern(reg.get("source")) == 0   # idempotent
    assert len(table) == 2


def test_redefined_shape_takes_a_fresh_id(reg):
    table = TypeTable()
    old = table.intern(reg.get("story"))
    redefined = TypeDescriptor(
        "story", attributes=[AttributeSpec("headline", "string"),
                             AttributeSpec("byline", "string")])
    new = table.intern(redefined)
    assert new != old
    # name lookup resolves to the latest shape
    assert table.named("story")["attributes"][1]["name"] == "byline"


def test_pending_defs_marks_each_id_once(reg):
    table = TypeTable()
    sid = table.intern(reg.get("source"))
    tid = table.intern(reg.get("story"))
    assert table.pending_defs((sid, tid)) == [sid, tid]
    assert table.pending_defs((sid, tid)) == []   # already on the wire
    assert table.wire_defined == {sid, tid}


def test_blob_round_trips_description(reg):
    table = TypeTable()
    tid = table.intern(reg.get("story"))
    assert decode(table.blob(tid), None) == reg.get("story").describe()


def test_table_is_its_own_resolver(reg):
    table = TypeTable()
    tid = table.intern(reg.get("source"))
    assert table.description(tid)["name"] == "source"
    assert table.description(99) is None
    assert table.named("source")["name"] == "source"
    assert table.named("nope") is None


# ----------------------------------------------------------------------
# PeerTypeView
# ----------------------------------------------------------------------
def make_view(reg, *names):
    table = TypeTable()
    raw = {}
    for name in names:
        tid = table.intern(reg.get(name))
        raw[tid] = table.blob(tid)
    return raw, PeerTypeView(raw)


def test_peer_view_decodes_lazily(reg):
    raw, view = make_view(reg, "source", "story")
    assert view._described == {}          # nothing parsed yet
    assert view.description(0)["name"] == "source"
    assert set(view._described) == {0}    # only the asked-for id
    assert view.description(7) is None


def test_peer_view_sees_raw_map_mutations(reg):
    raw, view = make_view(reg, "source")
    assert view.named("story") is None
    table = TypeTable()
    table.intern(reg.get("source"))
    tid = table.intern(reg.get("story"))
    raw[tid] = table.blob(tid)            # wire layer learns a new def
    assert view.named("story")["name"] == "story"


def test_peer_view_named_prefers_latest_redefinition(reg):
    table = TypeTable()
    old = table.intern(reg.get("story"))
    redefined = TypeDescriptor(
        "story", attributes=[AttributeSpec("headline", "string"),
                             AttributeSpec("byline", "string")])
    new = table.intern(redefined)
    raw = {old: table.blob(old), new: table.blob(new)}
    view = PeerTypeView(raw)
    names = [a["name"] for a in view.named("story")["attributes"]]
    assert "byline" in names


# ----------------------------------------------------------------------
# encode_typed / O-tag decode
# ----------------------------------------------------------------------
def test_typed_round_trip_through_resolver(reg):
    table = TypeTable()
    src = DataObject(reg, "source", name="Reuters")
    story = DataObject(reg, "story", headline="Chips up", source=src)
    payload, refs = encode_typed(story, reg, table)
    assert len(refs) == 3                 # closure: root + source + story
    fresh = standard_registry()           # knows neither type
    back = decode(payload, fresh, type_resolver=table)
    assert back == story
    assert back.get("source").get("name") == "Reuters"
    assert fresh.has("story") and fresh.has("source")


def test_typed_payload_smaller_than_inline(reg):
    story = DataObject(reg, "story", headline="Chips up")
    table = TypeTable()
    payload, _ = encode_typed(story, reg, table)
    inline = encode(story, reg, inline_types=True)
    assert len(payload) < len(inline) * 0.6


def test_typed_encoding_of_bare_values_is_unchanged(reg):
    table = TypeTable()
    for value in (None, 42, "hello", [1, 2], {"k": b"v"}):
        payload, refs = encode_typed(value, reg, table)
        assert refs == ()
        assert payload == encode(value)
    assert len(table) == 0


def test_unknown_type_id_raises_without_crashing(reg):
    table = TypeTable()
    story = DataObject(reg, "story", headline="X")
    payload, refs = encode_typed(story, reg, table)
    fresh = standard_registry()
    with pytest.raises(UnknownTypeError):
        decode(payload, fresh)                        # no resolver at all
    with pytest.raises(UnknownTypeError):
        decode(payload, fresh, type_resolver=PeerTypeView({}))  # empty map


def test_conflicting_learned_shape_raises(reg):
    """A typed payload whose definition conflicts with an already-
    registered name fails decode (parity with inline-metadata mode)."""
    from repro.objects import TypeError_
    table = TypeTable()
    story = DataObject(reg, "story", headline="X")
    payload, _ = encode_typed(story, reg, table)
    other = standard_registry()
    other.register(TypeDescriptor(
        "story", attributes=[AttributeSpec("headline", "int")]))
    with pytest.raises(TypeError_):
        decode(payload, other, type_resolver=table)


def test_relearning_same_shape_is_idempotent(reg):
    table = TypeTable()
    story = DataObject(reg, "story", headline="X")
    payload, _ = encode_typed(story, reg, table)
    fresh = standard_registry()
    decode(payload, fresh, type_resolver=table)
    before = fresh.get("story")
    decode(payload, fresh, type_resolver=table)
    assert fresh.get("story") is before   # same descriptor object kept


def test_unknown_o_tag_fails_before_attribute_decode(reg):
    """Satellite: the string-named ``o`` tag rejects unknown types
    before paying to decode the attribute tree."""
    src = DataObject(reg, "source", name="DJ")
    wire = encode(src)                    # bare: no metadata block
    with pytest.raises(UnknownTypeError):
        decode(wire, standard_registry())
    with pytest.raises(UnknownTypeError):
        decode(wire, None)


# ----------------------------------------------------------------------
# encoded_size counting sink (satellite)
# ----------------------------------------------------------------------
@pytest.mark.parametrize("inline", [False, True])
def test_encoded_size_matches_encode(reg, inline):
    src = DataObject(reg, "source", name="Reuters")
    story = DataObject(reg, "story", headline="h" * 100, source=src)
    for value in (story, {"stories": [story, story]}, "plain", 12345):
        assert encoded_size(value, reg, inline_types=inline) == \
            len(encode(value, reg, inline_types=inline))
