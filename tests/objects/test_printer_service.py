"""Tests for the generic print utility and service objects."""

import pytest

from repro.objects import (AttributeSpec, DataObject, OperationSpec,
                           ParamSpec, ServiceError, ServiceObject,
                           TypeDescriptor, render, standard_registry)


@pytest.fixture
def reg():
    registry = standard_registry()
    registry.register(TypeDescriptor(
        "source", attributes=[AttributeSpec("name", "string")]))
    registry.register(TypeDescriptor(
        "story",
        attributes=[AttributeSpec("headline", "string"),
                    AttributeSpec("codes", "list<string>", required=False),
                    AttributeSpec("source", "source", required=False)]))
    return registry


# ----------------------------------------------------------------------
# printer
# ----------------------------------------------------------------------

def test_render_recursively_descends(reg):
    story = DataObject(reg, "story", headline="Fab yields up",
                       codes=["semis", "fab5"],
                       source=DataObject(reg, "source", name="Reuters"))
    text = render(story)
    assert "<story>" in text
    assert 'headline: "Fab yields up"' in text
    assert "[0]" in text and '"semis"' in text
    assert "<source>" in text and '"Reuters"' in text


def test_render_marks_unset_attributes(reg):
    story = DataObject(reg, "story", headline="x")
    assert "<unset list<string>>" in render(story)


def test_render_handles_any_type_generically(reg):
    """The print utility needs no per-type code: a brand-new type renders."""
    reg.register(TypeDescriptor(
        "recipe", attributes=[AttributeSpec("steps", "list<string>")]))
    recipe = DataObject(reg, "recipe", steps=["etch", "rinse"])
    assert "<recipe>" in render(recipe)


def test_render_scalars_and_containers(reg):
    assert render(None) == "nil"
    assert render(42) == "42"
    assert render("hi") == '"hi"'
    assert render(b"abc") == "<3 bytes>"
    assert render([]) == "[]"
    assert render({}) == "{}"
    assert "map of 2" in render({"b": 1, "a": 2})


def test_render_depth_limit(reg):
    nested = [[[[[["deep"]]]]]]
    text = render(nested, max_depth=3)
    assert "..." in text


# ----------------------------------------------------------------------
# service objects
# ----------------------------------------------------------------------

@pytest.fixture
def quote_service(reg):
    reg.register(TypeDescriptor(
        "quote_service",
        operations=[
            OperationSpec("last_price", params=(ParamSpec("symbol", "string"),),
                          result_type="float", doc="latest trade price"),
            OperationSpec("symbols", result_type="list<string>"),
            OperationSpec("reset"),
        ],
        doc="market data access"))
    svc = ServiceObject(reg, "quote_service")
    prices = {"GM": 41.5, "IBM": 58.25}
    svc.implement("last_price", lambda symbol: prices[symbol])
    svc.implement("symbols", lambda: sorted(prices))
    return svc


def test_invoke_checks_signature(quote_service):
    assert quote_service.invoke("last_price", {"symbol": "GM"}) == 41.5
    assert quote_service.invoke("symbols", {}) == ["GM", "IBM"]


def test_invoke_unknown_operation(quote_service):
    with pytest.raises(ServiceError, match="no operation"):
        quote_service.invoke("ghost", {})


def test_invoke_missing_argument(quote_service):
    with pytest.raises(ServiceError, match="missing"):
        quote_service.invoke("last_price", {})


def test_invoke_unknown_argument(quote_service):
    with pytest.raises(ServiceError, match="unknown"):
        quote_service.invoke("symbols", {"bogus": 1})


def test_invoke_bad_argument_type(quote_service):
    with pytest.raises(Exception):
        quote_service.invoke("last_price", {"symbol": 123})


def test_invoke_unimplemented_operation(quote_service):
    with pytest.raises(ServiceError, match="not implemented"):
        quote_service.invoke("reset", {})
    assert quote_service.missing_operations() == ["reset"]


def test_result_type_checked(reg):
    reg.register(TypeDescriptor(
        "bad_service",
        operations=[OperationSpec("n", result_type="int")]))
    svc = ServiceObject(reg, "bad_service")
    svc.implement("n", lambda: "not an int")
    with pytest.raises(Exception):
        svc.invoke("n", {})


def test_implement_unknown_operation_rejected(reg):
    reg.register(TypeDescriptor("empty_service"))
    svc = ServiceObject(reg, "empty_service")
    with pytest.raises(ServiceError):
        svc.implement("ghost", lambda: None)


def test_service_is_self_describing(quote_service):
    desc = quote_service.describe()
    ops = {o["name"] for o in desc["operations"]}
    assert ops == {"last_price", "symbols", "reset"}
    sig = quote_service.operation("last_price").signature()
    assert sig == "last_price(symbol: string) -> float"
