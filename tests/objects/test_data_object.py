"""Tests for DataObject validation and the meta-object protocol."""

import pytest

from repro.objects import (AttributeSpec, DataObject, OperationSpec,
                           TypeDescriptor, ValidationError, check_value,
                           make_property, standard_registry)


@pytest.fixture
def reg():
    registry = standard_registry()
    registry.register(TypeDescriptor(
        "source", attributes=[AttributeSpec("name", "string")]))
    registry.register(TypeDescriptor(
        "story",
        attributes=[
            AttributeSpec("headline", "string"),
            AttributeSpec("body", "string", required=False),
            AttributeSpec("words", "int", required=False),
            AttributeSpec("hot", "bool", required=False),
            AttributeSpec("score", "float", required=False),
            AttributeSpec("codes", "list<string>", required=False),
            AttributeSpec("meta", "map<string>", required=False),
            AttributeSpec("source", "source", required=False),
            AttributeSpec("anything", "any", required=False),
        ],
        operations=[OperationSpec("summarize", result_type="string")]))
    registry.register(TypeDescriptor(
        "reuters_story", supertype="story",
        attributes=[AttributeSpec("ric", "string", required=False)]))
    return registry


def test_construct_and_access(reg):
    story = DataObject(reg, "story", headline="IC fab yields up",
                       words=420, hot=True)
    assert story.type_name == "story"
    assert story.get("headline") == "IC fab yields up"
    assert story.get("body") is None
    assert story.get("body", "dflt") == "dflt"
    assert story.has("words") and not story.has("body")


def test_missing_required_attribute(reg):
    with pytest.raises(ValidationError, match="headline"):
        DataObject(reg, "story", words=10)


def test_undeclared_attribute_rejected(reg):
    with pytest.raises(ValidationError, match="no attribute"):
        DataObject(reg, "story", headline="x", bogus=1)


def test_get_undeclared_attribute_raises(reg):
    story = DataObject(reg, "story", headline="x")
    with pytest.raises(ValidationError):
        story.get("bogus")


@pytest.mark.parametrize("attr,bad", [
    ("headline", 7), ("words", "many"), ("words", True), ("hot", 1),
    ("score", "high"), ("codes", "notalist"), ("codes", [1]),
    ("meta", {"k": 5}), ("meta", {1: "v"}), ("source", "acme"),
])
def test_type_checking_rejects(reg, attr, bad):
    attrs = {"headline": "x"}
    attrs[attr] = bad
    with pytest.raises(ValidationError):
        DataObject(reg, "story", attributes=attrs)


def test_float_accepts_int(reg):
    story = DataObject(reg, "story", headline="x", score=3)
    assert story.get("score") == 3


def test_nested_object_attribute(reg):
    src = DataObject(reg, "source", name="Reuters")
    story = DataObject(reg, "story", headline="x", source=src)
    assert story.get("source").get("name") == "Reuters"


def test_subtype_instance_accepted_where_supertype_declared(reg):
    reg.register(TypeDescriptor(
        "wire_source", supertype="source",
        attributes=[AttributeSpec("feed_id", "string", required=False)]))
    src = DataObject(reg, "wire_source", name="DJ", feed_id="dj1")
    story = DataObject(reg, "story", headline="x", source=src)
    assert story.get("source").is_a("source")


def test_set_validates(reg):
    story = DataObject(reg, "story", headline="x")
    story.set("words", 99)
    assert story.get("words") == 99
    with pytest.raises(ValidationError):
        story.set("words", "many")


def test_inherited_attributes_visible_on_subtype(reg):
    story = DataObject(reg, "reuters_story", headline="x", ric="GM.N")
    assert story.attribute_names()[:2] == ["headline", "body"]
    assert "ric" in story.attribute_names()
    assert story.attribute_type("headline") == "string"
    assert story.is_a("story") and story.is_a("object")
    assert not story.is_a("property")


def test_operations_via_mop(reg):
    story = DataObject(reg, "reuters_story", headline="x")
    assert [op.name for op in story.operations()] == ["summarize"]


def test_oid_unique_and_typed(reg):
    a = DataObject(reg, "story", headline="a")
    b = DataObject(reg, "story", headline="b")
    assert a.oid != b.oid
    assert a.oid.startswith("story:")


def test_explicit_oid_preserved(reg):
    a = DataObject(reg, "story", headline="a", oid="story:fixed")
    assert a.oid == "story:fixed"


def test_structural_equality_ignores_oid(reg):
    a = DataObject(reg, "story", headline="same")
    b = DataObject(reg, "story", headline="same")
    c = DataObject(reg, "story", headline="different")
    assert a == b
    assert a != c
    assert a != "not an object"


def test_as_dict_is_a_copy(reg):
    story = DataObject(reg, "story", headline="x")
    d = story.as_dict()
    d["headline"] = "mutated"
    assert story.get("headline") == "x"


def test_any_attribute_accepts_everything(reg):
    for value in [1, "s", [1, 2], {"k": "v"}, None,
                  DataObject(reg, "source", name="n")]:
        DataObject(reg, "story", headline="x", anything=value)


def test_check_value_standalone(reg):
    check_value(reg, "list<list<int>>", [[1], [2, 3]])
    with pytest.raises(ValidationError):
        check_value(reg, "list<list<int>>", [[1], ["x"]])


def test_property_helper(reg):
    story = DataObject(reg, "story", headline="x")
    prop = make_property(reg, "keywords", ["fab", "yield"], ref=story.oid)
    assert prop.is_a("property")
    assert prop.get("value") == ["fab", "yield"]
    assert prop.get("ref") == story.oid


def test_repr_is_stable(reg):
    story = DataObject(reg, "story", headline="x", words=1)
    assert repr(story) == "story(headline='x', words=1)"
