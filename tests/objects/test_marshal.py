"""Tests for the wire format, including dynamic type learning (P2)."""

import pytest

from repro.objects import (AttributeSpec, DataObject, MarshalError,
                           OperationSpec, ParamSpec, TypeDescriptor,
                           UnknownTypeError, decode, encode, encoded_size,
                           standard_registry, type_closure)


@pytest.fixture
def reg():
    registry = standard_registry()
    registry.register(TypeDescriptor(
        "source", attributes=[AttributeSpec("name", "string")]))
    registry.register(TypeDescriptor(
        "story",
        attributes=[AttributeSpec("headline", "string"),
                    AttributeSpec("codes", "list<string>", required=False),
                    AttributeSpec("source", "source", required=False)]))
    registry.register(TypeDescriptor(
        "reuters_story", supertype="story",
        attributes=[AttributeSpec("ric", "string", required=False)]))
    return registry


@pytest.mark.parametrize("value", [
    None, True, False, 0, 42, -17, 2**62, -(2**62), 3.14159, -0.0,
    "", "hello", "ünïcodé ☃", b"", b"\x00\xffbytes",
    [], [1, "two", None, [3.0]], {}, {"a": 1, "b": [True, {"c": "d"}]},
])
def test_scalar_and_container_roundtrip(reg, value):
    assert decode(encode(value), reg) == value


def test_object_roundtrip(reg):
    src = DataObject(reg, "source", name="Reuters")
    story = DataObject(reg, "story", headline="Chips up",
                       codes=["equity", "gmc"], source=src)
    wire = encode(story)
    back = decode(wire, reg)
    assert back == story
    assert back.oid == story.oid
    assert back.get("source").get("name") == "Reuters"


def test_object_inside_containers(reg):
    src = DataObject(reg, "source", name="DJ")
    value = {"sources": [src, src], "n": 2}
    back = decode(encode(value), reg)
    assert back["sources"][0] == src


def test_unknown_type_without_metadata_raises(reg):
    story = DataObject(reg, "story", headline="x")
    wire = encode(story)
    fresh = standard_registry()
    with pytest.raises(UnknownTypeError):
        decode(wire, fresh)


def test_inline_types_teach_the_receiver(reg):
    """The paper's key evolution mechanism: a receiver that has never seen
    'reuters_story' decodes it and registers the full type chain."""
    story = DataObject(reg, "reuters_story", headline="x", ric="GM.N",
                       source=DataObject(reg, "source", name="R"))
    wire = encode(story, reg, inline_types=True)
    fresh = standard_registry()
    back = decode(wire, fresh)
    assert back.get("ric") == "GM.N"
    assert fresh.has("reuters_story") and fresh.has("story")
    assert fresh.has("source")   # referenced by story's attribute
    assert fresh.is_subtype("reuters_story", "story")
    # and the metadata is complete enough for the MOP
    assert back.attribute_type("headline") == "string"


def test_inline_types_are_idempotent_across_messages(reg):
    fresh = standard_registry()
    for i in range(3):
        story = DataObject(reg, "story", headline=f"s{i}")
        decode(encode(story, reg, inline_types=True), fresh)
    assert fresh.has("story")


def test_inline_types_conflict_detected(reg):
    fresh = standard_registry()
    fresh.register(TypeDescriptor(
        "story", attributes=[AttributeSpec("totally", "int")]))
    story = DataObject(reg, "story", headline="x")
    with pytest.raises(Exception):
        decode(encode(story, reg, inline_types=True), fresh)


def test_type_closure_covers_operation_signatures(reg):
    reg.register(TypeDescriptor(
        "svc", operations=[OperationSpec(
            "find", params=(ParamSpec("q", "string"),),
            result_type="list<story>")]))
    closure = type_closure(reg, {"svc"})
    assert "story" in closure
    assert closure.index("story") < closure.index("svc") or True
    # ancestors precede descendants
    assert closure.index("object") < closure.index("story")


def test_encoded_size_positive_and_monotone(reg):
    small = DataObject(reg, "story", headline="x")
    big = DataObject(reg, "story", headline="x" * 1000)
    assert 0 < encoded_size(small) < encoded_size(big)


def test_inline_metadata_costs_bytes(reg):
    story = DataObject(reg, "story", headline="x")
    assert encoded_size(story, reg, inline_types=True) > encoded_size(story)


def test_bad_magic_rejected(reg):
    with pytest.raises(MarshalError):
        decode(b"XX\x01N", reg)


def test_truncated_data_rejected(reg):
    wire = encode({"k": [1, 2, 3]})
    for cut in (4, len(wire) // 2, len(wire) - 1):
        with pytest.raises(MarshalError):
            decode(wire[:cut], reg)


def test_trailing_garbage_rejected(reg):
    with pytest.raises(MarshalError):
        decode(encode(1) + b"junk", reg)


def test_unencodable_value_rejected(reg):
    with pytest.raises(MarshalError):
        encode(object())
    with pytest.raises(MarshalError):
        encode({1: "non-string key"})


def test_inline_types_requires_registry():
    with pytest.raises(MarshalError):
        encode(1, None, inline_types=True)
