"""Golden wire vectors: the marshalled format must stay stable.

A bus deployed "24 by 7" upgrades piecemeal, so new code must decode
what old code encoded.  These vectors freeze the byte-level format; if
one of them changes, that is a wire-compatibility break and needs to be
a deliberate, versioned decision (bump the magic), not an accident.
"""

import pytest

from repro.objects import (AttributeSpec, DataObject, TypeDescriptor,
                           decode, encode, standard_registry)

GOLDEN_SCALARS = [
    (None, "4942014e"),
    (True, "49420154"),
    (False, "49420146"),
    (0, "494201690000000000000000"),
    (1, "494201690000000000000001"),
    (-1, "49420169ffffffffffffffff"),
    (2**40, "494201690000010000000000"),
    (1.5, "494201643ff8000000000000"),
    ("", "4942017300"),
    ("hi", "49420173026869"),
    ("é", "4942017302c3a9"),
    (b"", "4942016200"),
    (b"\x00\xff", "494201620200ff"),
    ([], "4942016c00"),
    ([1, "a"], "4942016c02690000000000000001730161"),
    ({}, "4942016d00"),
]


@pytest.mark.parametrize("value,expected_hex", GOLDEN_SCALARS,
                         ids=[repr(v)[:20] for v, _ in GOLDEN_SCALARS])
def test_scalar_golden_vectors(value, expected_hex):
    wire = encode(value).hex()
    if expected_hex.endswith("["):          # documented prefix-only vector
        assert wire.startswith(expected_hex[:-1])
    else:
        assert wire == expected_hex
    assert decode(bytes.fromhex(wire), standard_registry()) == value


def test_object_golden_vector():
    reg = standard_registry()
    reg.register(TypeDescriptor(
        "tick", attributes=[AttributeSpec("px", "float"),
                            AttributeSpec("sym", "string")]))
    obj = DataObject(reg, "tick", {"px": 1.0, "sym": "GM"},
                     oid="tick:00000001")
    wire = encode(obj)
    expected = (
        "494201"                    # magic "IB\x01"
        "6f"                        # 'o' object tag
        "047469636b"                # type name "tick"
        "0d7469636b3a3030303030303031"   # oid "tick:00000001"
        "02"                        # two attributes set
        "027078"                    # "px"
        "643ff0000000000000"        # 'd' 1.0
        "0373796d"                  # "sym"
        "7302474d"                  # 's' "GM"
    )
    assert wire.hex() == expected
    assert decode(wire, reg) == obj


def test_magic_version_is_stable():
    assert encode(None)[:3] == b"IB\x01"


def test_inline_metadata_block_tag():
    reg = standard_registry()
    reg.register(TypeDescriptor(
        "t", attributes=[AttributeSpec("a", "int", required=False)]))
    obj = DataObject(reg, "t", {})
    wire = encode(obj, reg, inline_types=True)
    assert wire[3:4] == b"M"        # metadata block marker after magic
    # and a schema-naive process can still decode it
    assert decode(wire, standard_registry()).type_name == "t"
