"""Tests for type descriptors and the registry (P2/P3)."""

import pytest

from repro.objects import (AttributeSpec, OperationSpec, ParamSpec,
                           TypeDescriptor, TypeError_, TypeRegistry,
                           parse_type_name, standard_registry)


# ----------------------------------------------------------------------
# type-name parsing
# ----------------------------------------------------------------------

def test_parse_plain_name():
    assert parse_type_name("story") == ("story", None)


def test_parse_parameterized():
    assert parse_type_name("list<string>") == ("list", "string")
    assert parse_type_name("map<story>") == ("map", "story")
    assert parse_type_name("list<list<int>>") == ("list", "list<int>")


@pytest.mark.parametrize("bad", ["", "list<", "set<int>", "1abc",
                                 "a b", "list<>"])
def test_parse_rejects_malformed(bad):
    with pytest.raises(TypeError_):
        parse_type_name(bad)


# ----------------------------------------------------------------------
# descriptors
# ----------------------------------------------------------------------

def test_descriptor_describe_roundtrip():
    desc = TypeDescriptor(
        "story",
        attributes=[AttributeSpec("headline", "string", doc="title"),
                    AttributeSpec("codes", "list<string>", required=False)],
        operations=[OperationSpec("summarize",
                                  params=(ParamSpec("width", "int"),),
                                  result_type="string")],
        doc="a news story")
    rebuilt = TypeDescriptor.from_description(desc.describe())
    assert rebuilt.same_shape(desc)
    assert rebuilt.own_attribute("codes").required is False


def test_operation_signature_string():
    op = OperationSpec("lookup", params=(ParamSpec("cat", "string"),),
                       result_type="list<string>")
    assert op.signature() == "lookup(cat: string) -> list<string>"


def test_duplicate_attribute_rejected():
    with pytest.raises(TypeError_):
        TypeDescriptor("t", attributes=[AttributeSpec("a", "int"),
                                        AttributeSpec("a", "string")])


def test_duplicate_operation_rejected():
    with pytest.raises(TypeError_):
        TypeDescriptor("t", operations=[OperationSpec("f"),
                                        OperationSpec("f")])


def test_duplicate_parameter_rejected():
    with pytest.raises(TypeError_):
        OperationSpec("f", params=(ParamSpec("x", "int"),
                                   ParamSpec("x", "int")))


def test_cannot_redefine_fundamental():
    with pytest.raises(TypeError_):
        TypeDescriptor("int")


# ----------------------------------------------------------------------
# registry
# ----------------------------------------------------------------------

def test_registry_contains_root_and_property():
    reg = standard_registry()
    assert "object" in reg
    assert "property" in reg
    assert reg.get("property").supertype == "object"


def test_register_and_lookup():
    reg = TypeRegistry()
    reg.register(TypeDescriptor("story",
                                attributes=[AttributeSpec("h", "string")]))
    assert reg.has("story")
    assert reg.get("story").name == "story"
    assert "story" in reg.names()


def test_unknown_type_raises():
    reg = TypeRegistry()
    with pytest.raises(TypeError_):
        reg.get("nope")


def test_unknown_supertype_rejected():
    reg = TypeRegistry()
    with pytest.raises(TypeError_):
        reg.register(TypeDescriptor("t", supertype="ghost"))


def test_unknown_attribute_type_rejected():
    reg = TypeRegistry()
    with pytest.raises(TypeError_):
        reg.register(TypeDescriptor(
            "t", attributes=[AttributeSpec("a", "ghost")]))


def test_self_referential_attribute_allowed():
    reg = TypeRegistry()
    reg.register(TypeDescriptor(
        "node", attributes=[AttributeSpec("next", "node", required=False)]))


def test_parameterized_attribute_type_checked():
    reg = TypeRegistry()
    with pytest.raises(TypeError_):
        reg.register(TypeDescriptor(
            "t", attributes=[AttributeSpec("a", "list<ghost>")]))


def test_idempotent_reregistration():
    reg = TypeRegistry()
    d1 = TypeDescriptor("t", attributes=[AttributeSpec("a", "int")])
    d2 = TypeDescriptor("t", attributes=[AttributeSpec("a", "int")])
    reg.register(d1)
    assert reg.register(d2) is d1   # no-op returns the original


def test_conflicting_reregistration_rejected():
    reg = TypeRegistry()
    reg.register(TypeDescriptor("t", attributes=[AttributeSpec("a", "int")]))
    with pytest.raises(TypeError_):
        reg.register(TypeDescriptor(
            "t", attributes=[AttributeSpec("a", "string")]))


def test_subtype_cannot_redeclare_inherited_attribute():
    reg = TypeRegistry()
    reg.register(TypeDescriptor("base",
                                attributes=[AttributeSpec("a", "int")]))
    with pytest.raises(TypeError_):
        reg.register(TypeDescriptor(
            "derived", supertype="base",
            attributes=[AttributeSpec("a", "int")]))


# ----------------------------------------------------------------------
# hierarchy
# ----------------------------------------------------------------------

@pytest.fixture
def story_hierarchy():
    reg = standard_registry()
    reg.register(TypeDescriptor(
        "story", attributes=[AttributeSpec("headline", "string")],
        operations=[OperationSpec("summarize", result_type="string")]))
    reg.register(TypeDescriptor(
        "reuters_story", supertype="story",
        attributes=[AttributeSpec("ric", "string")]))
    reg.register(TypeDescriptor(
        "dowjones_story", supertype="story",
        attributes=[AttributeSpec("djcode", "string")],
        operations=[OperationSpec("summarize", result_type="string",
                                  doc="override")]))
    return reg


def test_supertype_chain(story_hierarchy):
    assert story_hierarchy.supertype_chain("reuters_story") == \
        ["reuters_story", "story", "object"]


def test_is_subtype(story_hierarchy):
    reg = story_hierarchy
    assert reg.is_subtype("reuters_story", "story")
    assert reg.is_subtype("reuters_story", "object")
    assert reg.is_subtype("story", "story")
    assert not reg.is_subtype("story", "reuters_story")


def test_subtypes_of(story_hierarchy):
    reg = story_hierarchy
    assert reg.subtypes_of("story") == ["dowjones_story", "reuters_story"]
    assert reg.subtypes_of("story", transitive=False) == \
        ["dowjones_story", "reuters_story"]
    assert "story" in reg.subtypes_of("object")


def test_all_attributes_merges_supertypes(story_hierarchy):
    names = [a.name for a in story_hierarchy.all_attributes("reuters_story")]
    assert names == ["headline", "ric"]   # supertype attrs first


def test_operation_override(story_hierarchy):
    ops = story_hierarchy.all_operations("dowjones_story")
    assert len(ops) == 1
    assert ops[0].doc == "override"
    # lookup resolves through the chain
    assert story_hierarchy.operation("reuters_story", "summarize") is not None
    assert story_hierarchy.attribute("reuters_story", "headline") is not None
    assert story_hierarchy.attribute("reuters_story", "ghost") is None


def test_on_register_listener():
    reg = TypeRegistry()
    seen = []
    reg.on_register(lambda d: seen.append(d.name))
    reg.register(TypeDescriptor("t1"))
    reg.register(TypeDescriptor("t2"))
    reg.register(TypeDescriptor("t1"))   # idempotent: no event
    assert seen == ["t1", "t2"]
